"""The interthread call graph (ICG) and its dataflow facts (Section 5.2-5.3).

The paper represents a multithreaded program as an ICFG (statement-level
nodes; intraprocedural, call, return, and *start* edges) and uses the
**interthread call graph (ICG)** as its scalable interprocedural
abstraction: one node per method and — notably — one node per
synchronized block.  This module builds the ICG from the points-to
analysis's on-the-fly call graph and computes on it:

* **MustSync** — the paper's dataflow equations

  .. math::

     SO_o^n = SO_i^n \\cup Gen(n), \\qquad
     SO_i^n = \\bigcap_{p \\in Pred(n)} SO_o^p

  where ``Gen`` of a sync node is the must points-to set of its lock
  and ``Pred`` ranges over *intrathread* predecessors only; thread
  roots (``main`` and started ``run`` methods) are boundary nodes with
  ``SO_i = ∅`` — a started thread holds no locks;

* **ThStart / MustThread** — for each method, the set of thread roots
  that can reach it over intrathread paths, and equation (3)'s
  ``MustThread(u) = ∩_{v ∈ ThStart(u)} MustPT(v.this)``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..lang.resolver import ResolvedProgram
from . import ir
from .dataflow import TOP, DataflowProblem, meet_intersection, solve_forward
from .pointsto import MAIN_THREAD, PointsToResult, local_node
from .single_instance import SingleInstanceInfo


def method_node(qualified_name: str):
    return ("method", qualified_name)


def sync_node(qualified_name: str, sync_id: int):
    return ("sync", qualified_name, sync_id)


@dataclass
class ICG:
    """The interthread call graph plus its solved dataflow facts."""

    nodes: set
    preds: dict
    thread_roots: set[str]
    #: node -> SO_o (must-held synchronization objects), set of
    #: AbstractObject or dataflow.TOP for unreachable nodes.
    must_sync_out: dict
    #: method -> set of thread-root method names that reach it.
    th_start: dict[str, set[str]]
    #: method -> MustThread set (abstract thread objects).
    must_thread: dict[str, frozenset]

    def enclosing_node(self, method: str, sync_stack: tuple):
        """The ICG node containing an instruction with ``sync_stack``."""
        if sync_stack:
            return sync_node(method, sync_stack[-1])
        return method_node(method)

    def must_sync_at(self, method: str, sync_stack: tuple) -> frozenset:
        """MustSync of any statement at the given static sync context."""
        value = self.must_sync_out.get(self.enclosing_node(method, sync_stack))
        if value is TOP or value is None:
            return frozenset()
        return frozenset(value)

    def must_thread_of(self, method: str) -> frozenset:
        return self.must_thread.get(method, frozenset())


class ICGBuilder:
    """Builds the ICG and runs MustSync / MustThread."""

    def __init__(
        self,
        resolved: ResolvedProgram,
        points_to: PointsToResult,
        single: SingleInstanceInfo,
    ):
        self._resolved = resolved
        self._pts = points_to
        self._single = single

    def build(self) -> ICG:
        nodes, preds, gens = self._build_graph()
        thread_roots = {edge.run_method for edge in self._pts.start_edges}
        main = self._resolved.main_method.qualified_name
        boundary = {method_node(main)}
        boundary.update(method_node(root) for root in thread_roots)

        def transfer(node, in_value):
            if in_value is TOP:
                return TOP
            return set(in_value) | gens.get(node, set())

        problem = DataflowProblem(
            nodes=nodes,
            preds=lambda n: preds.get(n, ()),
            boundary_nodes=boundary,
            boundary_value=set(),
            transfer=transfer,
            meet=meet_intersection,
        )
        solution = solve_forward(problem)
        must_sync_out = {node: out for node, (_, out) in solution.items()}

        th_start = self._compute_th_start(thread_roots, main)
        must_thread = self._compute_must_thread(th_start, thread_roots, main)

        return ICG(
            nodes=nodes,
            preds=preds,
            thread_roots=thread_roots,
            must_sync_out=must_sync_out,
            th_start=th_start,
            must_thread=must_thread,
        )

    # ------------------------------------------------------------------

    def _build_graph(self):
        nodes = set()
        preds: dict = defaultdict(set)
        gens: dict = {}

        for method in self._pts.reachable_methods:
            nodes.add(method_node(method))
            function = self._pts.functions.get(method)
            if function is None:
                continue
            for block in function.blocks:
                for instr in block.instrs:
                    if isinstance(instr, ir.MonitorEnter):
                        node = sync_node(method, instr.sync_id)
                        nodes.add(node)
                        # The enter instruction's own sync_stack is the
                        # *enclosing* context (the block's id is pushed
                        # after the enter is emitted).
                        parent = self._enclosing(method, instr.sync_stack)
                        preds[node].add(parent)
                        gens[node] = set(self._must_lock(method, instr))

        # Call edges: the callee's method node is preceded by the ICG
        # node containing the call site.
        for edge in self._pts.call_edges:
            callee = method_node(edge.callee)
            nodes.add(callee)
            caller_node = self._enclosing(edge.caller, edge.sync_stack)
            nodes.add(caller_node)
            preds[callee].add(caller_node)

        # Start edges are interthread: deliberately NOT added to preds —
        # a freshly started thread holds none of its parent's locks.
        return nodes, preds, gens

    def _enclosing(self, method: str, sync_stack: tuple):
        if sync_stack:
            return sync_node(method, sync_stack[-1])
        return method_node(method)

    def _must_lock(self, method: str, enter: ir.MonitorEnter) -> frozenset:
        may = self._pts.points_to(local_node(method, enter.lock))
        return self._single.must_points_to(may)

    # ------------------------------------------------------------------

    def _compute_th_start(
        self, thread_roots: set[str], main: str
    ) -> dict[str, set[str]]:
        """Intrathread (call-edge) reachability from each thread root."""
        call_succ: dict[str, set[str]] = defaultdict(set)
        for edge in self._pts.call_edges:
            call_succ[edge.caller].add(edge.callee)

        th_start: dict[str, set[str]] = defaultdict(set)
        for root in sorted(thread_roots | {main}):
            seen = {root}
            stack = [root]
            while stack:
                method = stack.pop()
                th_start[method].add(root)
                for succ in call_succ.get(method, ()):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
        return dict(th_start)

    def _compute_must_thread(
        self,
        th_start: dict[str, set[str]],
        thread_roots: set[str],
        main: str,
    ) -> dict[str, frozenset]:
        root_this: dict[str, frozenset] = {main: frozenset({MAIN_THREAD})}
        for root in thread_roots:
            may = self._pts.points_to(local_node(root, "this"))
            root_this[root] = self._single.must_points_to(may)

        must_thread: dict[str, frozenset] = {}
        for method, roots in th_start.items():
            result: Optional[frozenset] = None
            for root in roots:
                this_set = root_this.get(root, frozenset())
                result = this_set if result is None else (result & this_set)
            must_thread[method] = result if result is not None else frozenset()
        return must_thread


def build_icg(
    resolved: ResolvedProgram,
    points_to: PointsToResult,
    single: SingleInstanceInfo,
) -> ICG:
    """Build the ICG and solve MustSync / MustThread."""
    return ICGBuilder(resolved, points_to, single).build()
