"""Global value numbering over SSA form.

The static weaker-than relation needs ``valnum(o_i) = valnum(o_j)`` —
proof that two access instructions' base-object references hold the
same value (Section 6.1).  After SSA construction every register has a
unique definition, so value numbers attach to SSA names:

* constants hash by value, class constants by class;
* ``Move`` forwards its operand's number (copy propagation);
* pure operators (``BinOp``/``UnOp``) hash by ``(op, operand VNs)``;
* phis hash by ``(block, predecessor → operand VN)`` when all operands
  are already numbered — two phis in the same block with identical
  operand maps merge; otherwise (loop-carried values) they get a fresh
  number, which is conservative but sound;
* everything observing mutable state (loads, allocations, calls,
  array length) gets a fresh number per definition — the analysis never
  assumes two loads yield the same value.

Soundness property used downstream: ``vn(a) == vn(b)`` implies the two
registers hold the same value at any point where both are in scope.
"""

from __future__ import annotations

from typing import Optional

from . import ir
from .cfg import FlowGraph
from .ssa import UNDEF


class ValueNumbering:
    """Assigns value numbers to every SSA register of a function."""

    def __init__(self, function: ir.Function, graph: FlowGraph):
        self._function = function
        self._graph = graph
        self._next = 0
        self._expr_table: dict = {}
        self.register_vn: dict[str, int] = {}
        self._compute()

    # ------------------------------------------------------------------

    def _fresh(self) -> int:
        self._next += 1
        return self._next

    def _lookup(self, key) -> int:
        vn = self._expr_table.get(key)
        if vn is None:
            vn = self._fresh()
            self._expr_table[key] = vn
        return vn

    def vn(self, register: Optional[str]) -> Optional[int]:
        """The value number of ``register``, or None if unknown."""
        if register is None:
            return None
        return self.register_vn.get(register)

    def same_value(self, reg_a: str, reg_b: str) -> bool:
        """True iff the two registers provably hold the same value."""
        vn_a = self.vn(reg_a)
        vn_b = self.vn(reg_b)
        return vn_a is not None and vn_a == vn_b

    # ------------------------------------------------------------------

    def _compute(self) -> None:
        for block_id in self._graph.rpo:
            for instr in self._function.blocks[block_id].instrs:
                dest = instr.defs()
                if dest is None:
                    continue
                self.register_vn[dest] = self._number(instr, block_id)
        # Entry parameters were renamed to name#1 by SSA; ensure they
        # have numbers even if never redefined (defs() of params is
        # implicit).
        for param in self._function.params:
            name = f"{param}#1"
            if name not in self.register_vn:
                self.register_vn[name] = self._lookup(("param", param))

    def _number(self, instr: ir.Instr, block_id: int) -> int:
        if isinstance(instr, ir.Const):
            return self._lookup(("const", type(instr.value).__name__, instr.value))
        if isinstance(instr, ir.ClassConst):
            return self._lookup(("classconst", instr.class_name))
        if isinstance(instr, ir.Move):
            vn = self.vn(instr.src)
            if vn is not None:
                return vn
            return self._lookup(("reg", instr.src))
        if isinstance(instr, ir.BinOp):
            left = self.vn(instr.left)
            right = self.vn(instr.right)
            if left is None or right is None:
                return self._fresh()
            return self._lookup(("bin", instr.op, left, right))
        if isinstance(instr, ir.UnOp):
            operand = self.vn(instr.operand)
            if operand is None:
                return self._fresh()
            return self._lookup(("un", instr.op, operand))
        if isinstance(instr, ir.Phi):
            operand_vns = []
            for pred, reg in sorted(instr.operands.items()):
                if reg == UNDEF:
                    return self._fresh()
                vn = self.vn(reg)
                if vn is None:
                    # Back-edge operand not yet numbered (loop-carried):
                    # conservatively fresh.
                    return self._fresh()
                operand_vns.append((pred, vn))
            if operand_vns and len({vn for _, vn in operand_vns}) == 1:
                # All operands agree: the phi is a no-op.
                return operand_vns[0][1]
            return self._lookup(("phi", block_id, tuple(operand_vns)))
        # Loads, allocations, calls, array length: opaque.
        return self._fresh()


def value_numbering(function: ir.Function, graph: FlowGraph) -> ValueNumbering:
    """Compute value numbers for an SSA-form function."""
    return ValueNumbering(function, graph)
