"""SSA construction (Cytron et al.) over the lowered IR.

The paper's optimizer converts Jalapeño HIR to SSA form after inserting
trace pseudo-instructions, computing dominance along the way, and then
runs value numbering to decide ``valnum(o_i) = valnum(o_j)``
(Section 6.2).  This module is the corresponding step: minimal-SSA phi
placement via iterated dominance frontiers, followed by the standard
dominator-tree renaming walk.

Renaming rewrites the function *in place*: every register definition
gets a fresh ``name#N`` version, and ``Phi`` instructions appear at the
head of join blocks.  Uses of variables that may be undefined on some
path rename to the ``UNDEF`` register (MJ's resolver rejects reads of
undeclared locals, so UNDEF only shows up for genuinely dead paths).
"""

from __future__ import annotations

from collections import defaultdict

from .cfg import FlowGraph
from .dominators import DominatorInfo
from .ir import Function, Phi

UNDEF = "⊥undef"


class SSABuilder:
    """Builds pruned-enough minimal SSA for one function."""

    def __init__(self, function: Function, graph: FlowGraph, dom: DominatorInfo):
        self._function = function
        self._graph = graph
        self._dom = dom
        self._counters: dict[str, int] = defaultdict(int)
        self._stacks: dict[str, list[str]] = defaultdict(list)

    def build(self) -> None:
        self._insert_phis()
        self._rename_block(0)

    # ------------------------------------------------------------------
    # Phi placement.

    def _definition_blocks(self) -> dict[str, set[int]]:
        defs: dict[str, set[int]] = defaultdict(set)
        for block_id in self._graph.reachable:
            for instr in self._function.blocks[block_id].instrs:
                dest = instr.defs()
                if dest is not None:
                    defs[dest].add(block_id)
        # Parameters are defined at entry.
        for param in self._function.params:
            defs[param].add(0)
        return defs

    def _insert_phis(self) -> None:
        defs = self._definition_blocks()
        for var, def_blocks in defs.items():
            placed: set[int] = set()
            worklist = list(def_blocks)
            while worklist:
                block_id = worklist.pop()
                for frontier_block in self._dom.frontiers.get(block_id, ()):
                    if frontier_block in placed:
                        continue
                    placed.add(frontier_block)
                    phi = Phi(dest=var, var=var, operands={})
                    self._function.blocks[frontier_block].instrs.insert(0, phi)
                    if frontier_block not in def_blocks:
                        worklist.append(frontier_block)

    # ------------------------------------------------------------------
    # Renaming.

    def _fresh(self, var: str) -> str:
        self._counters[var] += 1
        name = f"{var}#{self._counters[var]}"
        self._stacks[var].append(name)
        return name

    def _current(self, var: str) -> str:
        stack = self._stacks[var]
        return stack[-1] if stack else UNDEF

    def _rename_block(self, block_id: int) -> None:
        block = self._function.blocks[block_id]
        pushed: list[str] = []

        if block_id == 0:
            for param in self._function.params:
                self._fresh(param)
                pushed.append(param)

        for instr in block.instrs:
            if isinstance(instr, Phi):
                instr.dest = self._fresh(instr.var)
                pushed.append(instr.var)
                continue
            self._rename_uses(instr)
            dest = instr.defs()
            if dest is not None:
                new_name = self._fresh(dest)
                self._set_def(instr, new_name)
                pushed.append(dest)

        if block.branch_reg is not None:
            block.branch_reg = self._current(self._base(block.branch_reg))

        for succ in self._graph.successors(block_id):
            for instr in self._function.blocks[succ].instrs:
                if not isinstance(instr, Phi):
                    break
                instr.operands[block_id] = self._current(instr.var)

        for child in self._dom.children.get(block_id, ()):
            self._rename_block(child)

        for var in pushed:
            self._stacks[var].pop()

    @staticmethod
    def _base(name: str) -> str:
        """The original variable of a (possibly renamed) register."""
        return name.split("#", 1)[0]

    def _rename_uses(self, instr) -> None:
        for attr in ("src", "obj", "array", "index", "left", "right",
                     "operand", "lock", "thread", "receiver", "size"):
            value = getattr(instr, attr, None)
            if isinstance(value, str):
                setattr(instr, attr, self._current(value))
        args = getattr(instr, "args", None)
        if args is not None:
            instr.args = [self._current(arg) for arg in args]

    @staticmethod
    def _set_def(instr, new_name: str) -> None:
        instr.dest = new_name


def build_ssa(function: Function) -> tuple[FlowGraph, DominatorInfo]:
    """Convert ``function`` to SSA in place; returns its CFG and dominators."""
    graph = FlowGraph(function)
    dom = DominatorInfo(graph)
    SSABuilder(function, graph, dom).build()
    return graph, dom
