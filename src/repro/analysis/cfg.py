"""Control-flow-graph utilities over lowered functions.

Plain graph plumbing shared by the dominator, SSA, and dataflow
machinery: reachability from the entry block, reverse postorder, and
predecessor maps restricted to reachable blocks.  MJ permits dead code
after ``return``; the lowering parks it in predecessor-less blocks, and
every analysis works on the reachable subgraph only.
"""

from __future__ import annotations

from .ir import Function


class FlowGraph:
    """The reachable CFG of one function, with precomputed orders."""

    def __init__(self, function: Function):
        self.function = function
        self.reachable = self._compute_reachable()
        self.preds = self._compute_preds()
        self.rpo = self._compute_rpo()
        #: block id -> position in reverse postorder.
        self.rpo_index = {block_id: i for i, block_id in enumerate(self.rpo)}

    def _compute_reachable(self) -> set[int]:
        seen = {0}
        stack = [0]
        blocks = self.function.blocks
        while stack:
            block_id = stack.pop()
            for succ in blocks[block_id].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def _compute_preds(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {b: [] for b in self.reachable}
        for block_id in self.reachable:
            for succ in self.function.blocks[block_id].successors:
                if succ in self.reachable:
                    preds[succ].append(block_id)
        return preds

    def _compute_rpo(self) -> list[int]:
        """Reverse postorder of the reachable blocks (iterative DFS)."""
        postorder: list[int] = []
        visited: set[int] = set()
        # Each stack entry is (block_id, iterator over successors).
        stack = [(0, iter(self.function.blocks[0].successors))]
        visited.add(0)
        while stack:
            block_id, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in visited:
                    visited.add(succ)
                    stack.append(
                        (succ, iter(self.function.blocks[succ].successors))
                    )
                    advanced = True
                    break
            if not advanced:
                postorder.append(block_id)
                stack.pop()
        postorder.reverse()
        return postorder

    def successors(self, block_id: int) -> list[int]:
        return [
            succ
            for succ in self.function.blocks[block_id].successors
            if succ in self.reachable
        ]
