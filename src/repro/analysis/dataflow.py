"""A small generic monotone-dataflow solver.

Used by two analyses in this reproduction:

* the interprocedural **MustSync** equations over the ICG
  (Section 5.3: ``SO_i``/``SO_o`` with set-intersection meet), and
* the **trace availability** analysis that decides the static
  weaker-than relation's ``Exec`` condition (Section 6.1) — see
  :mod:`repro.instrument.static_weaker`.

The solver is a standard worklist fixpoint over an arbitrary node set.
``TOP`` is the optimistic initial value for *must* problems (the
intersection identity); transfer and meet functions must treat it
accordingly.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

#: Optimistic initial value for must-style (intersection) analyses.
TOP = object()


def meet_intersection(values):
    """Set-intersection meet over an iterable, honoring TOP."""
    result = TOP
    for value in values:
        if value is TOP:
            continue
        if result is TOP:
            result = set(value)
        else:
            result = result & value
    return result


class DataflowProblem:
    """A forward dataflow problem over an explicit node graph.

    Parameters
    ----------
    nodes:
        All nodes.
    preds:
        ``node -> iterable of predecessor nodes``.
    boundary_nodes:
        Nodes whose in-value is fixed to ``boundary_value`` (entries).
    boundary_value:
        The in-value at boundary nodes.
    transfer:
        ``(node, in_value) -> out_value``.
    meet:
        Combines predecessor out-values (e.g. ``meet_intersection``).
    """

    def __init__(
        self,
        nodes: Iterable[Hashable],
        preds: Callable[[Hashable], Iterable[Hashable]],
        boundary_nodes: Iterable[Hashable],
        boundary_value,
        transfer: Callable,
        meet: Callable,
    ):
        self.nodes = list(nodes)
        self.preds = preds
        self.boundary_nodes = set(boundary_nodes)
        self.boundary_value = boundary_value
        self.transfer = transfer
        self.meet = meet


def solve_forward(problem: DataflowProblem) -> dict:
    """Iterate to fixpoint; returns ``node -> (in_value, out_value)``."""
    in_values = {node: TOP for node in problem.nodes}
    out_values = {node: TOP for node in problem.nodes}
    for node in problem.boundary_nodes:
        in_values[node] = problem.boundary_value

    # Successor map for worklist propagation.
    succs: dict = {node: [] for node in problem.nodes}
    for node in problem.nodes:
        for pred in problem.preds(node):
            succs.setdefault(pred, []).append(node)

    worklist = list(problem.nodes)
    in_list = set(worklist)
    while worklist:
        node = worklist.pop()
        in_list.discard(node)
        if node in problem.boundary_nodes:
            new_in = problem.boundary_value
        else:
            new_in = problem.meet(
                out_values[pred] for pred in problem.preds(node)
            )
        new_out = problem.transfer(node, new_in)
        in_values[node] = new_in
        if not _equal(new_out, out_values[node]):
            out_values[node] = new_out
            for succ in succs.get(node, ()):
                if succ not in in_list:
                    in_list.add(succ)
                    worklist.append(succ)
    return {node: (in_values[node], out_values[node]) for node in problem.nodes}


def _equal(a, b) -> bool:
    if a is TOP or b is TOP:
        return a is b
    return a == b
