"""Construction-immutability analysis — the second Section 10 item.

The paper's conclusions plan to extend the co-analysis approach to
"deadlock detection and immutability analysis".  This module supplies
the immutability half: a field is **construction-immutable** for a
class when

* every write to it (on objects of that class) is a ``this``-write
  inside the class's *init closure* — ``init`` plus methods reachable
  only from the closure with ``this`` passed as the receiver (the same
  this-passing closure shape as Section 5.4's thread-specific methods);
* the class constructs *safely*: ``this`` does not escape the init
  closure, so no other thread can observe the object mid-construction.

Reads of such fields can never race: all writes are confined to the
constructing thread before the object is published, and publication in
MJ is ordered by ``start``/field handoff.  (This leans on the same
start-ordering argument the ownership model encodes dynamically —
which is why, like the paper would have it, the analysis is an
**opt-in** refinement: ``PlannerConfig(immutability_analysis=True)``.)

Effect: conflicting pairs whose only common objects conflict on
construction-immutable fields are pruned from the static datarace set —
e.g. tsp2's ``CityInfo.x``/``.y`` coordinate reads need no
instrumentation at all.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..lang.resolver import ResolvedProgram
from . import ir
from .pointsto import AbstractObject, ObjectCategory, PointsToResult


@dataclass
class ImmutabilityInfo:
    """Per-class construction-immutable fields."""

    #: class name -> frozenset of immutable field names.
    immutable_fields: dict[str, frozenset]
    #: class name -> the init-closure method names (diagnostics).
    init_closures: dict[str, frozenset]

    def field_is_immutable(self, obj: AbstractObject, field_name: str) -> bool:
        if obj.category is not ObjectCategory.INSTANCE:
            return False
        return field_name in self.immutable_fields.get(obj.class_name, ())


class ImmutabilityAnalysis:
    def __init__(self, resolved: ResolvedProgram, points_to: PointsToResult):
        self._resolved = resolved
        self._pts = points_to

    def analyze(self) -> ImmutabilityInfo:
        closures = {
            class_name: self._init_closure(class_name)
            for class_name in self._resolved.classes
        }
        immutable: dict[str, frozenset] = {}
        for class_name, info in self._resolved.classes.items():
            closure = closures[class_name]
            if closure is None:
                immutable[class_name] = frozenset()
                continue
            candidates = set(info.instance_fields())
            for site in self._pts.site_bases.values():
                if not site.is_write or site.kind != "instance":
                    continue
                if site.field_name not in candidates:
                    continue
                bases = self._pts.points_to(site.base)
                touches_class = any(
                    obj.category is ObjectCategory.INSTANCE
                    and obj.class_name == class_name
                    for obj in bases
                )
                if not touches_class:
                    continue
                if site.method not in closure or not site.base_is_this:
                    candidates.discard(site.field_name)
            immutable[class_name] = frozenset(candidates)
        return ImmutabilityInfo(
            immutable_fields=immutable,
            init_closures={
                name: frozenset(closure) if closure is not None else frozenset()
                for name, closure in closures.items()
            },
        )

    # ------------------------------------------------------------------

    def _init_closure(self, class_name: str):
        """The init-closure method set, or None when construction is
        unsafe (no init is fine: nothing can leak)."""
        info = self._resolved.classes[class_name]
        init = info.resolve_method("init")
        if init is None or init.is_static:
            return frozenset()
        closure = {init.qualified_name}

        edges_by_callee = defaultdict(list)
        for edge in self._pts.call_edges:
            edges_by_callee[edge.callee].append(edge)

        changed = True
        while changed:
            changed = False
            for method in self._pts.reachable_methods:
                if method in closure:
                    continue
                decl = self._find_method_decl(method)
                if decl is None or decl.is_static:
                    continue
                edges = edges_by_callee.get(method)
                if not edges:
                    continue
                if all(
                    edge.caller in closure and edge.receiver_is_this
                    for edge in edges
                ):
                    closure.add(method)
                    changed = True

        for method in closure:
            if self._this_escapes(method):
                return None
        return frozenset(closure)

    def _find_method_decl(self, qualified_name: str):
        class_name, _, method_name = qualified_name.partition(".")
        info = self._resolved.classes.get(class_name)
        if info is None:
            return None
        return info.own_methods.get(method_name)

    def _this_escapes(self, method: str) -> bool:
        function = self._pts.functions.get(method)
        if function is None:
            return True
        for block in function.blocks:
            for instr in block.instrs:
                if isinstance(instr, ir.Move) and instr.src == "this":
                    return True
                if isinstance(instr, (ir.PutField, ir.PutStatic, ir.AStore)):
                    if instr.src == "this":
                        return True
                if isinstance(instr, ir.Invoke) and "this" in instr.args:
                    return True
                if isinstance(instr, ir.Ret) and instr.src == "this":
                    return True
                if isinstance(instr, ir.StartT) and instr.thread == "this":
                    return True
        return False


def analyze_immutability(
    resolved: ResolvedProgram, points_to: PointsToResult
) -> ImmutabilityInfo:
    """Run the construction-immutability analysis."""
    return ImmutabilityAnalysis(resolved, points_to).analyze()
