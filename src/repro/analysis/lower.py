"""Lowering from MJ ASTs to the linear IR.

One :class:`~repro.analysis.ir.Function` is produced per method.  The
lowering mirrors how the paper's system sees Java bytecode compiled to
Jalapeño HIR: every AST memory access becomes one access instruction
carrying its ``site_id`` (the trace point), calls become explicit
``Invoke`` barriers (including the implicit ``init`` call of ``new``),
sync blocks become ``MonitorEnter``/``MonitorExit`` bracketing, and
short-circuit boolean operators expand to control flow.

While lowering, each instruction is stamped with

* ``sync_stack`` — the ids of statically enclosing sync blocks,
  outermost first (used for the ``outer`` condition of the static
  weaker-than relation, Section 6.1);
* ``loop_depth`` — the number of enclosing MJ loops (used by the
  single-instance analysis, Section 5.3).
"""

from __future__ import annotations

from typing import Optional

from ..lang import ast
from ..lang.resolver import ResolvedProgram
from . import ir


class _LoweringContext:
    """Mutable state while lowering one method."""

    def __init__(self, function: ir.Function):
        self.function = function
        self.block = function.new_block()
        self.sync_stack: tuple = ()
        self.loop_depth = 0


class Lowerer:
    """Lowers every method of a resolved program."""

    def __init__(self, resolved: ResolvedProgram):
        self._resolved = resolved

    def lower_program(self) -> dict[str, ir.Function]:
        """Lower all methods; keys are qualified names (``Class.method``)."""
        functions = {}
        for method in self._resolved.methods:
            functions[method.qualified_name] = self.lower_method(method)
        return functions

    def lower_method(self, method: ast.MethodDecl) -> ir.Function:
        params = list(method.params)
        if not method.is_static:
            params = ["this"] + params
        function = ir.Function(method.qualified_name, params)
        ctx = _LoweringContext(function)
        self._lower_block(method.body, ctx)
        self._emit(ctx, ir.Ret(None))
        ctx.block.successors = []
        return function

    # ------------------------------------------------------------------
    # Emission helpers.

    def _emit(self, ctx: _LoweringContext, instr: ir.Instr, location=None) -> ir.Instr:
        instr.sync_stack = ctx.sync_stack
        instr.loop_depth = ctx.loop_depth
        if location is not None:
            instr.location = location
        ctx.block.append(instr)
        return instr

    def _goto_new_block(self, ctx: _LoweringContext) -> ir.Block:
        """End the current block with a jump to a fresh block."""
        new_block = ctx.function.new_block()
        ctx.block.successors = [new_block.id]
        ctx.block = new_block
        return new_block

    # ------------------------------------------------------------------
    # Statements.

    def _lower_block(self, block: ast.Block, ctx: _LoweringContext) -> None:
        for stmt in block.body:
            self._lower_stmt(stmt, ctx)

    def _lower_stmt(self, stmt: ast.Stmt, ctx: _LoweringContext) -> None:
        if isinstance(stmt, (ast.VarDecl, ast.AssignLocal)):
            value_expr = stmt.init if isinstance(stmt, ast.VarDecl) else stmt.value
            reg = self._lower_expr(value_expr, ctx)
            self._emit(ctx, ir.Move(stmt.name, reg), stmt.location)
        elif isinstance(stmt, ast.FieldWrite):
            obj = self._lower_expr(stmt.obj, ctx)
            value = self._lower_expr(stmt.value, ctx)
            self._emit(
                ctx,
                ir.PutField(obj, stmt.field_name, value, site_id=stmt.site_id),
                stmt.location,
            )
        elif isinstance(stmt, ast.StaticFieldWrite):
            value = self._lower_expr(stmt.value, ctx)
            self._emit(
                ctx,
                ir.PutStatic(
                    stmt.class_name, stmt.field_name, value, site_id=stmt.site_id
                ),
                stmt.location,
            )
        elif isinstance(stmt, ast.ArrayWrite):
            array = self._lower_expr(stmt.array, ctx)
            index = self._lower_expr(stmt.index, ctx)
            value = self._lower_expr(stmt.value, ctx)
            self._emit(
                ctx, ir.AStore(array, index, value, site_id=stmt.site_id), stmt.location
            )
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt, ctx)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt, ctx)
        elif isinstance(stmt, ast.Sync):
            lock = self._lower_expr(stmt.lock, ctx)
            self._emit(ctx, ir.MonitorEnter(lock, stmt.sync_id), stmt.location)
            outer_stack = ctx.sync_stack
            ctx.sync_stack = outer_stack + (stmt.sync_id,)
            self._lower_block(stmt.body, ctx)
            ctx.sync_stack = outer_stack
            self._emit(ctx, ir.MonitorExit(lock, stmt.sync_id), stmt.location)
        elif isinstance(stmt, ast.Start):
            thread = self._lower_expr(stmt.thread, ctx)
            self._emit(ctx, ir.StartT(thread), stmt.location)
        elif isinstance(stmt, ast.Join):
            thread = self._lower_expr(stmt.thread, ctx)
            self._emit(ctx, ir.JoinT(thread), stmt.location)
        elif isinstance(stmt, ast.Wait):
            target = self._lower_expr(stmt.target, ctx)
            self._emit(ctx, ir.WaitI(target), stmt.location)
        elif isinstance(stmt, ast.Notify):
            target = self._lower_expr(stmt.target, ctx)
            self._emit(ctx, ir.NotifyI(target, stmt.notify_all), stmt.location)
        elif isinstance(stmt, ast.Barrier):
            target = self._lower_expr(stmt.target, ctx)
            parties = self._lower_expr(stmt.parties, ctx)
            self._emit(ctx, ir.BarrierI(target, parties), stmt.location)
        elif isinstance(stmt, ast.Return):
            reg = None
            if stmt.value is not None:
                reg = self._lower_expr(stmt.value, ctx)
            self._emit(ctx, ir.Ret(reg), stmt.location)
            # Anything after a return is unreachable; park it in a fresh
            # block with no predecessors.
            ctx.block.successors = []
            ctx.block = ctx.function.new_block()
        elif isinstance(stmt, ast.Print):
            reg = self._lower_expr(stmt.value, ctx)
            self._emit(ctx, ir.PrintI(reg), stmt.location)
        elif isinstance(stmt, ast.Assert):
            reg = self._lower_expr(stmt.cond, ctx)
            self._emit(ctx, ir.AssertI(reg), stmt.location)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, ctx)
        elif isinstance(stmt, ast.Block):
            self._lower_block(stmt, ctx)
        else:
            raise TypeError(f"unhandled statement {type(stmt).__name__}")

    def _lower_if(self, stmt: ast.If, ctx: _LoweringContext) -> None:
        cond = self._lower_expr(stmt.cond, ctx)
        cond_block = ctx.block
        then_block = ctx.function.new_block()
        join_block: Optional[ir.Block] = None

        ctx.block = then_block
        self._lower_block(stmt.then_block, ctx)
        then_end = ctx.block

        if stmt.else_block is not None:
            else_block = ctx.function.new_block()
            ctx.block = else_block
            self._lower_block(stmt.else_block, ctx)
            else_end = ctx.block
            join_block = ctx.function.new_block()
            cond_block.branch_reg = cond
            cond_block.successors = [then_block.id, else_block.id]
            then_end.successors = [join_block.id]
            else_end.successors = [join_block.id]
        else:
            join_block = ctx.function.new_block()
            cond_block.branch_reg = cond
            cond_block.successors = [then_block.id, join_block.id]
            then_end.successors = [join_block.id]
        ctx.block = join_block

    def _lower_while(self, stmt: ast.While, ctx: _LoweringContext) -> None:
        preheader = ctx.block
        header = ctx.function.new_block()
        preheader.successors = [header.id]
        ctx.block = header

        ctx.loop_depth += 1
        cond = self._lower_expr(stmt.cond, ctx)
        cond_end = ctx.block

        body_block = ctx.function.new_block()
        ctx.block = body_block
        self._lower_block(stmt.body, ctx)
        body_end = ctx.block
        ctx.loop_depth -= 1

        exit_block = ctx.function.new_block()
        cond_end.branch_reg = cond
        cond_end.successors = [body_block.id, exit_block.id]
        body_end.successors = [header.id]
        ctx.block = exit_block

    # ------------------------------------------------------------------
    # Expressions.

    def _lower_expr(self, expr: ast.Expr, ctx: _LoweringContext) -> str:
        function = ctx.function
        if isinstance(expr, ast.IntLiteral):
            temp = function.new_temp()
            self._emit(ctx, ir.Const(temp, expr.value), expr.location)
            return temp
        if isinstance(expr, ast.BoolLiteral):
            temp = function.new_temp()
            self._emit(ctx, ir.Const(temp, expr.value), expr.location)
            return temp
        if isinstance(expr, ast.StringLiteral):
            temp = function.new_temp()
            self._emit(ctx, ir.Const(temp, expr.value), expr.location)
            return temp
        if isinstance(expr, ast.NullLiteral):
            temp = function.new_temp()
            self._emit(ctx, ir.Const(temp, None), expr.location)
            return temp
        if isinstance(expr, ast.VarRef):
            return expr.name
        if isinstance(expr, ast.ThisRef):
            return "this"
        if isinstance(expr, ast.ClassRef):
            temp = function.new_temp()
            self._emit(ctx, ir.ClassConst(temp, expr.class_name), expr.location)
            return temp
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self._lower_short_circuit(expr, ctx)
            left = self._lower_expr(expr.left, ctx)
            right = self._lower_expr(expr.right, ctx)
            temp = function.new_temp()
            self._emit(ctx, ir.BinOp(temp, expr.op, left, right), expr.location)
            return temp
        if isinstance(expr, ast.Unary):
            operand = self._lower_expr(expr.operand, ctx)
            temp = function.new_temp()
            self._emit(ctx, ir.UnOp(temp, expr.op, operand), expr.location)
            return temp
        if isinstance(expr, ast.FieldRead):
            obj = self._lower_expr(expr.obj, ctx)
            temp = function.new_temp()
            self._emit(
                ctx,
                ir.GetField(temp, obj, expr.field_name, site_id=expr.site_id),
                expr.location,
            )
            return temp
        if isinstance(expr, ast.StaticFieldRead):
            temp = function.new_temp()
            self._emit(
                ctx,
                ir.GetStatic(
                    temp, expr.class_name, expr.field_name, site_id=expr.site_id
                ),
                expr.location,
            )
            return temp
        if isinstance(expr, ast.ArrayRead):
            array = self._lower_expr(expr.array, ctx)
            index = self._lower_expr(expr.index, ctx)
            temp = function.new_temp()
            self._emit(
                ctx, ir.ALoad(temp, array, index, site_id=expr.site_id), expr.location
            )
            return temp
        if isinstance(expr, ast.New):
            temp = function.new_temp()
            self._emit(
                ctx, ir.NewObj(temp, expr.class_name, expr.alloc_id), expr.location
            )
            info = self._resolved.class_info(expr.class_name)
            init = info.resolve_method("init")
            if init is not None and not init.is_static:
                args = [self._lower_expr(arg, ctx) for arg in expr.args]
                self._emit(
                    ctx,
                    ir.Invoke(
                        dest=None,
                        receiver=temp,
                        method_name="init",
                        args=args,
                        call_id=self._resolved.id_allocator.call_id(),
                        is_init=True,
                    ),
                    expr.location,
                )
            return temp
        if isinstance(expr, ast.NewArray):
            size = self._lower_expr(expr.size, ctx)
            temp = function.new_temp()
            self._emit(ctx, ir.NewArr(temp, size, expr.alloc_id), expr.location)
            return temp
        if isinstance(expr, ast.Call):
            receiver = None
            if expr.receiver is not None:
                receiver = self._lower_expr(expr.receiver, ctx)
            args = [self._lower_expr(arg, ctx) for arg in expr.args]
            temp = function.new_temp()
            self._emit(
                ctx,
                ir.Invoke(
                    dest=temp,
                    receiver=receiver,
                    method_name=expr.method_name,
                    args=args,
                    call_id=expr.call_id,
                    static_class=expr.static_class,
                ),
                expr.location,
            )
            return temp
        raise TypeError(f"unhandled expression {type(expr).__name__}")

    def _lower_short_circuit(self, expr: ast.Binary, ctx: _LoweringContext) -> str:
        """Expand ``&&`` / ``||`` into control flow.

        The result register ``$scN`` is assigned on both paths; SSA
        later merges the assignments with a phi.
        """
        function = ctx.function
        result = f"$sc{function.new_temp()[1:]}"
        left = self._lower_expr(expr.left, ctx)
        entry_end = ctx.block

        rhs_block = function.new_block()
        short_block = function.new_block()
        join_block = function.new_block()

        entry_end.branch_reg = left
        if expr.op == "&&":
            entry_end.successors = [rhs_block.id, short_block.id]
            short_value = False
        else:
            entry_end.successors = [short_block.id, rhs_block.id]
            short_value = True

        ctx.block = rhs_block
        right = self._lower_expr(expr.right, ctx)
        self._emit(ctx, ir.Move(result, right), expr.location)
        ctx.block.successors = [join_block.id]

        ctx.block = short_block
        self._emit(ctx, ir.Const(result, short_value), expr.location)
        ctx.block.successors = [join_block.id]

        ctx.block = join_block
        return result


def lower_program(resolved: ResolvedProgram) -> dict[str, ir.Function]:
    """Lower every method of ``resolved``; keyed by qualified name."""
    return Lowerer(resolved).lower_program()
