"""The static datarace analysis: computing the static datarace set.

Section 5.1's conservative formulation for a statement pair ``(x, y)``:

.. math::

   IsMayRace(x, y) \\iff AccMayConflict(x, y)
        \\land \\lnot MustSameThread(x, y)
        \\land \\lnot MustCommonSync(x, y)

with equation (2) for ``AccMayConflict`` (may points-to intersection
plus field equality — and, as the datarace conditions require, at least
one write), equation (3) for ``MustSameThread`` (must points-to of the
reaching thread roots), and equation (4) for ``MustCommonSync`` (the
ICG MustSync dataflow).  The escape refinements of Section 5.4 remove
conflicts whose only common objects are thread-local or thread-specific.

Any site that is in no ``IsMayRace`` pair is a non-datarace statement:
the instrumenter never inserts a trace for it.  The result also keeps
per-site prune reasons so the experiment harness can report *why* the
static phase removed instrumentation.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from ..lang.resolver import ResolvedProgram
from .escape import EscapeInfo, analyze_escape
from .icfg import ICG, build_icg
from .immutability import ImmutabilityInfo, analyze_immutability
from .pointsto import (
    AbstractObject,
    ObjectCategory,
    PointsToResult,
    analyze_points_to,
)
from .single_instance import SingleInstanceInfo, analyze_single_instance


@dataclass
class StaticRaceStats:
    sites_total: int = 0
    sites_unreachable: int = 0
    sites_racy: int = 0
    pairs_checked: int = 0
    pairs_conflicting: int = 0
    pairs_pruned_same_thread: int = 0
    pairs_pruned_common_sync: int = 0
    pairs_pruned_escape: int = 0
    pairs_pruned_immutability: int = 0
    pairs_racy: int = 0


@dataclass
class StaticRaceSet:
    """The analysis result.

    ``racy_sites`` holds the site ids of the static datarace set.
    ``may_race_pairs`` holds the surviving pairs — the "usually small
    set of source locations whose execution could potentially race"
    that the paper surfaces for debugging (Section 2.6).
    """

    racy_sites: set[int]
    may_race_pairs: list[tuple[int, int]]
    stats: StaticRaceStats
    points_to: PointsToResult
    single_instance: SingleInstanceInfo
    icg: ICG
    escape: EscapeInfo
    immutability: Optional[ImmutabilityInfo] = None

    def is_racy(self, site_id: int) -> bool:
        return site_id in self.racy_sites

    def partners_of(self, site_id: int) -> set[int]:
        """Sites that may race with ``site_id`` (debugging support)."""
        partners = set()
        for a, b in self.may_race_pairs:
            if a == site_id:
                partners.add(b)
            elif b == site_id:
                partners.add(a)
        return partners


class StaticRaceAnalysis:
    """Runs the full static phase (Figure 1's first box).

    ``immutability=True`` additionally runs the construction-
    immutability analysis (the Section 10 extension) and prunes pairs
    whose only conflicts are on construction-immutable fields.
    """

    def __init__(self, resolved: ResolvedProgram, immutability: bool = False):
        self._resolved = resolved
        self._immutability = immutability

    def analyze(self) -> StaticRaceSet:
        points_to = analyze_points_to(self._resolved)
        single = analyze_single_instance(self._resolved, points_to)
        icg = build_icg(self._resolved, points_to, single)
        escape = analyze_escape(self._resolved, points_to)
        immutability = (
            analyze_immutability(self._resolved, points_to)
            if self._immutability
            else None
        )

        stats = StaticRaceStats(sites_total=len(self._resolved.sites))
        stats.sites_unreachable = stats.sites_total - len(points_to.site_bases)

        sites = list(points_to.site_bases.values())
        # Group sites by field name: sites on different fields can never
        # conflict, so only same-field pairs are examined.
        by_field: dict[str, list] = defaultdict(list)
        for site in sites:
            by_field[site.field_name].append(site)

        racy: set[int] = set()
        pairs: list[tuple[int, int]] = []
        for group in by_field.values():
            for i, x in enumerate(group):
                # Include the diagonal: a site can race with another
                # execution of itself in a different thread.
                for y in group[i:]:
                    stats.pairs_checked += 1
                    if self._is_may_race(
                        x, y, points_to, icg, escape, immutability, stats
                    ):
                        stats.pairs_racy += 1
                        racy.add(x.site_id)
                        racy.add(y.site_id)
                        pairs.append((x.site_id, y.site_id))
        stats.sites_racy = len(racy)

        return StaticRaceSet(
            racy_sites=racy,
            may_race_pairs=pairs,
            stats=stats,
            points_to=points_to,
            single_instance=single,
            icg=icg,
            escape=escape,
            immutability=immutability,
        )

    # ------------------------------------------------------------------

    def _is_may_race(
        self, x, y, points_to, icg, escape, immutability, stats
    ) -> bool:
        # Datarace condition 1 (static form, eq. 2): may touch the same
        # location, with at least one write.
        if not (x.is_write or y.is_write):
            return False
        common = self._common_objects(x, y, points_to)
        if not common:
            return False
        stats.pairs_conflicting += 1

        # Escape refinement (Section 5.4): drop common objects that are
        # provably confined to one thread.
        raceable = {
            obj for obj in common if self._raceable_object(obj, x.field_name, escape)
        }
        if not raceable:
            stats.pairs_pruned_escape += 1
            return False

        # Immutability refinement (Section 10 extension, opt-in): a
        # construction-immutable field cannot race after publication.
        if immutability is not None:
            raceable = {
                obj
                for obj in raceable
                if not immutability.field_is_immutable(obj, x.field_name)
            }
            if not raceable:
                stats.pairs_pruned_immutability += 1
                return False

        # Datarace condition 2 (eq. 3): always the same thread?
        must_x = icg.must_thread_of(x.method)
        must_y = icg.must_thread_of(y.method)
        if must_x & must_y:
            stats.pairs_pruned_same_thread += 1
            return False

        # Datarace condition 3 (eq. 4): always a common lock?
        sync_x = icg.must_sync_at(x.method, x.sync_stack)
        sync_y = icg.must_sync_at(y.method, y.sync_stack)
        if sync_x & sync_y:
            stats.pairs_pruned_common_sync += 1
            return False
        return True

    @staticmethod
    def _common_objects(x, y, points_to) -> frozenset:
        if x.kind == "static" or y.kind == "static":
            if x.kind != y.kind:
                return frozenset()
            if x.owner_class != y.owner_class:
                return frozenset()
            return frozenset(
                {AbstractObject(ObjectCategory.CLASS, x.owner_class)}
            )
        return points_to.site_objects(x.site_id) & points_to.site_objects(
            y.site_id
        )

    @staticmethod
    def _raceable_object(obj, field_name, escape: EscapeInfo) -> bool:
        if obj.category is ObjectCategory.CLASS:
            return True  # Static fields are always shared.
        if escape.is_thread_local(obj):
            return False
        if escape.field_is_thread_specific(obj, field_name):
            return False
        if escape.object_is_thread_specific(obj):
            return False
        return True


def analyze_static_races(
    resolved: ResolvedProgram, immutability: bool = False
) -> StaticRaceSet:
    """Run the complete static datarace analysis."""
    return StaticRaceAnalysis(resolved, immutability=immutability).analyze()
