"""Single-instance statements and must points-to (Section 5.3).

A *single-instance* statement executes at most once per program run;
an object allocated at a single-instance statement is a
*single-instance object*, and a reference that may point only to such
an object **must** point to it — the paper's simple, conservative
must points-to analysis.

We compute a method-multiplicity analysis over the call graph:

* ``Main.main`` runs once;
* any method in a call-graph cycle (recursion) runs MANY times;
* otherwise a method runs ONCE iff it has exactly one incoming edge
  (call or start site), that site is not inside a loop, and the caller
  itself runs ONCE;

and then a statement is single-instance iff its enclosing method runs
ONCE and the statement is not inside a loop (``loop_depth == 0``).

Class objects and the main-thread pseudo-object are always singletons.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass

from ..lang.resolver import ResolvedProgram
from . import ir
from .pointsto import (
    MAIN_THREAD,
    AbstractObject,
    ObjectCategory,
    PointsToResult,
)


class Multiplicity(enum.Enum):
    ONE = "one"
    MANY = "many"


@dataclass
class SingleInstanceInfo:
    """Method multiplicities plus per-allocation single-instance facts."""

    method_multiplicity: dict[str, Multiplicity]
    single_instance_allocs: set[int]

    def method_runs_once(self, qualified_name: str) -> bool:
        return self.method_multiplicity.get(qualified_name) is Multiplicity.ONE

    def object_is_single_instance(self, obj: AbstractObject) -> bool:
        """True iff at most one concrete object maps to ``obj``."""
        if obj.category in (ObjectCategory.CLASS, ObjectCategory.MAIN_THREAD):
            return True
        return obj.alloc_id in self.single_instance_allocs

    def must_points_to(self, pts: frozenset) -> frozenset:
        """MustPT derived from MayPT: a singleton single-instance set."""
        if len(pts) == 1:
            (obj,) = pts
            if self.object_is_single_instance(obj):
                return pts
        return frozenset()


def _call_graph_sccs(nodes: set[str], edges: dict[str, set[str]]) -> dict[str, int]:
    """Tarjan SCC; returns node -> component id."""
    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: set[str] = set()
    component: dict[str, int] = {}
    comp_counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(edges.get(root, ())))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    comp_id = comp_counter[0]
                    comp_counter[0] += 1
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component[member] = comp_id
                        if member == node:
                            break
    for node in nodes:
        if node not in index:
            strongconnect(node)
    return component


def analyze_single_instance(
    resolved: ResolvedProgram, points_to: PointsToResult
) -> SingleInstanceInfo:
    """Compute method multiplicities and single-instance allocation sites."""
    main = resolved.main_method.qualified_name
    nodes = set(points_to.reachable_methods)
    nodes.add(main)

    # Incoming sites per method: (caller, loop_depth) per call/start edge.
    incoming: dict[str, list] = defaultdict(list)
    succ: dict[str, set[str]] = defaultdict(set)
    for edge in points_to.call_edges:
        incoming[edge.callee].append((edge.caller, edge.loop_depth))
        succ[edge.caller].add(edge.callee)
    for edge in points_to.start_edges:
        incoming[edge.run_method].append((edge.caller, edge.loop_depth))
        succ[edge.caller].add(edge.run_method)

    component = _call_graph_sccs(nodes, succ)
    comp_members: dict[int, list[str]] = defaultdict(list)
    for node, comp in component.items():
        comp_members[comp].append(node)
    recursive = {
        node
        for node, comp in component.items()
        if len(comp_members[comp]) > 1
        or node in succ.get(node, ())  # Self-recursion.
    }

    multiplicity: dict[str, Multiplicity] = {}

    def mult_of(method: str, visiting: set[str]) -> Multiplicity:
        cached = multiplicity.get(method)
        if cached is not None:
            return cached
        if method in recursive:
            multiplicity[method] = Multiplicity.MANY
            return Multiplicity.MANY
        if method == main:
            multiplicity[method] = Multiplicity.ONE
            return Multiplicity.ONE
        if method in visiting:
            multiplicity[method] = Multiplicity.MANY
            return Multiplicity.MANY
        sites = incoming.get(method, [])
        if len(sites) != 1:
            result = Multiplicity.MANY if sites else Multiplicity.ONE
            multiplicity[method] = result
            return result
        caller, loop_depth = sites[0]
        if loop_depth > 0:
            multiplicity[method] = Multiplicity.MANY
            return Multiplicity.MANY
        result = mult_of(caller, visiting | {method})
        multiplicity[method] = result
        return result

    for node in nodes:
        mult_of(node, set())

    # Allocation sites: single-instance iff not in a loop and in a
    # once-running method.
    single_allocs: set[int] = set()
    for method_name in points_to.reachable_methods:
        function = points_to.functions.get(method_name)
        if function is None:
            continue
        if multiplicity.get(method_name) is not Multiplicity.ONE:
            continue
        for block in function.blocks:
            for instr in block.instrs:
                if isinstance(instr, (ir.NewObj, ir.NewArr)):
                    if instr.loop_depth == 0:
                        single_allocs.add(instr.alloc_id)

    return SingleInstanceInfo(
        method_multiplicity=multiplicity,
        single_instance_allocs=single_allocs,
    )
