"""Flow-insensitive points-to analysis with an on-the-fly call graph.

Section 5.3 of the paper formulates static datarace analysis on top of
a flow-insensitive, whole-program points-to analysis in which each
allocation site contributes one abstract object.  This module is an
Andersen-style (inclusion-based) implementation over the lowered IR:

* one points-to set per IR register (per method), per abstract-object
  field slot, per static field slot, and per method return value;
* subset constraints from ``Move``; load/store constraints from field,
  static, and array instructions (array elements use the ``[]`` slot,
  matching the paper's one-location-per-array abstraction);
* calls are resolved *on the fly*: an ``Invoke``'s targets grow as the
  receiver's points-to set grows, adding parameter/return edges and
  call-graph edges; only methods reachable from ``Main.main`` are ever
  analyzed;
* ``start`` is the ICFG's interthread edge (Section 5.2): the thread
  expression's abstract objects bind to the ``this`` of their class's
  ``run`` method, and a *start edge* is recorded for the ICG.

Class objects (static-sync locks) are singleton abstract objects, and
a distinguished ``MAIN_THREAD`` object stands for the main thread in
the MustThread computation.

Outputs: points-to sets, the call graph (with each call site's static
sync context, needed by the ICG), start edges, and per-access-site
base information for ``AccMayConflict``.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from ..lang.resolver import ARRAY_FIELD, ResolvedProgram
from . import ir


class ObjectCategory(enum.Enum):
    INSTANCE = "instance"
    ARRAY = "array"
    CLASS = "class"
    MAIN_THREAD = "main-thread"


@dataclass(frozen=True)
class AbstractObject:
    """One abstract object: an allocation site, a class object, or the
    pseudo-object representing the main thread."""

    category: ObjectCategory
    class_name: str
    alloc_id: Optional[int] = None

    def __repr__(self) -> str:
        if self.category is ObjectCategory.CLASS:
            return f"<classobj {self.class_name}>"
        if self.category is ObjectCategory.MAIN_THREAD:
            return "<main-thread>"
        tag = "arr" if self.category is ObjectCategory.ARRAY else "obj"
        return f"<{tag} {self.class_name}@{self.alloc_id}>"


#: The pseudo abstract object for the main thread (MustThread of main).
MAIN_THREAD = AbstractObject(ObjectCategory.MAIN_THREAD, "<main>")


# Pointer-node keys (plain tuples keep the solver simple and hashable):
#   ("local", method_qname, register)
#   ("field", AbstractObject, field_name)
#   ("static", owner_class_name, field_name)
#   ("ret", method_qname)
def local_node(method: str, register: str):
    return ("local", method, register)


def field_node(obj: AbstractObject, field_name: str):
    return ("field", obj, field_name)


def static_node(owner_class: str, field_name: str):
    return ("static", owner_class, field_name)


def ret_node(method: str):
    return ("ret", method)


@dataclass(frozen=True)
class CallEdge:
    """A resolved call-graph edge.

    ``sync_stack`` is the static sync context of the call site in the
    caller — the ICG places call sites inside sync-block nodes.
    """

    caller: str
    callee: str
    call_id: Optional[int]
    sync_stack: tuple
    loop_depth: int
    #: True when the call site's receiver is the caller's own ``this``
    #: register — the this-passing pattern of the thread-specific-method
    #: definition in Section 5.4.
    receiver_is_this: bool = False
    #: True for the implicit ``init`` call of a ``new`` expression.
    is_init: bool = False


@dataclass(frozen=True)
class StartEdge:
    """An interthread (start) edge: a ``start`` site to a ``run`` method."""

    caller: str
    run_method: str
    thread_object: AbstractObject
    sync_stack: tuple
    loop_depth: int


@dataclass
class SiteBase:
    """Base-object information for one memory-access site."""

    site_id: int
    kind: str  # "instance" | "static" | "array"
    field_name: str
    method: str
    #: Pointer node of the base reference (instance/array sites).
    base: Optional[tuple] = None
    #: Owner class (static sites).
    owner_class: Optional[str] = None
    is_write: bool = False
    #: True when the access's base is the method's own `this` register.
    base_is_this: bool = False
    #: Static sync context (enclosing sync-block ids, outermost first).
    sync_stack: tuple = ()


class PointsToResult:
    """The solved analysis; query helpers for the downstream phases."""

    def __init__(
        self,
        pts: dict,
        call_edges: list[CallEdge],
        start_edges: list[StartEdge],
        site_bases: dict[int, SiteBase],
        reachable_methods: set[str],
        functions: dict[str, ir.Function],
    ):
        self._pts = pts
        self.call_edges = call_edges
        self.start_edges = start_edges
        self.site_bases = site_bases
        self.reachable_methods = reachable_methods
        self.functions = functions

    def points_to(self, node) -> frozenset:
        return frozenset(self._pts.get(node, ()))

    @property
    def nodes_to_objects(self) -> dict:
        """The raw solution: pointer node -> set of abstract objects."""
        return self._pts

    def may_point_to_register(self, method: str, register: str) -> frozenset:
        return self.points_to(local_node(method, register))

    def site_objects(self, site_id: int) -> frozenset:
        """MayPT of the site's base: the abstract objects it may access."""
        base = self.site_bases.get(site_id)
        if base is None:
            return frozenset()
        if base.kind == "static":
            info = AbstractObject(ObjectCategory.CLASS, base.owner_class)
            return frozenset({info})
        return self.points_to(base.base)

    def callees_of(self, method: str) -> set[str]:
        return {edge.callee for edge in self.call_edges if edge.caller == method}


class PointsToAnalysis:
    """The Andersen-style solver."""

    def __init__(self, resolved: ResolvedProgram, functions=None):
        self._resolved = resolved
        self._functions = (
            functions
            if functions is not None
            else _lower_all(resolved)
        )
        self._pts: dict = defaultdict(set)
        self._copy_edges: dict = defaultdict(set)
        self._loads: dict = defaultdict(list)  # base node -> (field, dest)
        self._stores: dict = defaultdict(list)  # base node -> (field, src)
        self._calls: dict = defaultdict(list)  # receiver node -> invoke ctx
        self._starts: dict = defaultdict(list)  # thread node -> start ctx
        self._resolved_targets: set = set()
        self._worklist: list = []
        self._reachable: set[str] = set()
        self._call_edges: list[CallEdge] = []
        self._call_edge_keys: set = set()
        self._start_edges: list[StartEdge] = []
        self._start_edge_keys: set = set()
        self._site_bases: dict[int, SiteBase] = {}

    # ------------------------------------------------------------------
    # Public API.

    def solve(self) -> PointsToResult:
        main = self._resolved.main_method.qualified_name
        self._reach_method(main)
        self._add_to(local_node("<root>", "<main-this>"), MAIN_THREAD)
        self._run_worklist()
        return PointsToResult(
            pts=dict(self._pts),
            call_edges=self._call_edges,
            start_edges=self._start_edges,
            site_bases=self._site_bases,
            reachable_methods=self._reachable,
            functions=self._functions,
        )

    # ------------------------------------------------------------------
    # Constraint generation.

    def _reach_method(self, qualified_name: str) -> None:
        if qualified_name in self._reachable:
            return
        self._reachable.add(qualified_name)
        function = self._functions.get(qualified_name)
        if function is None:
            return
        for block in function.blocks:
            for instr in block.instrs:
                self._generate(qualified_name, instr)

    def _generate(self, method: str, instr: ir.Instr) -> None:
        if isinstance(instr, ir.NewObj):
            obj = AbstractObject(
                ObjectCategory.INSTANCE, instr.class_name, instr.alloc_id
            )
            self._add_to(local_node(method, instr.dest), obj)
        elif isinstance(instr, ir.NewArr):
            obj = AbstractObject(ObjectCategory.ARRAY, "<array>", instr.alloc_id)
            self._add_to(local_node(method, instr.dest), obj)
        elif isinstance(instr, ir.ClassConst):
            obj = AbstractObject(ObjectCategory.CLASS, instr.class_name)
            self._add_to(local_node(method, instr.dest), obj)
        elif isinstance(instr, ir.Move):
            self._add_copy(
                local_node(method, instr.src), local_node(method, instr.dest)
            )
        elif isinstance(instr, ir.GetField):
            base = local_node(method, instr.obj)
            dest = local_node(method, instr.dest)
            self._loads[base].append((instr.field_name, dest))
            self._replay_loads(base)
            self._record_site(method, instr, "instance", base=base)
        elif isinstance(instr, ir.PutField):
            base = local_node(method, instr.obj)
            src = local_node(method, instr.src)
            self._stores[base].append((instr.field_name, src))
            self._replay_stores(base)
            self._record_site(method, instr, "instance", base=base)
        elif isinstance(instr, ir.GetStatic):
            owner = self._static_owner(instr.class_name, instr.field_name)
            self._add_copy(
                static_node(owner, instr.field_name),
                local_node(method, instr.dest),
            )
            self._record_site(method, instr, "static", owner_class=owner)
        elif isinstance(instr, ir.PutStatic):
            owner = self._static_owner(instr.class_name, instr.field_name)
            self._add_copy(
                local_node(method, instr.src),
                static_node(owner, instr.field_name),
            )
            self._record_site(method, instr, "static", owner_class=owner)
        elif isinstance(instr, ir.ALoad):
            base = local_node(method, instr.array)
            dest = local_node(method, instr.dest)
            self._loads[base].append((ARRAY_FIELD, dest))
            self._replay_loads(base)
            self._record_site(method, instr, "array", base=base)
        elif isinstance(instr, ir.AStore):
            base = local_node(method, instr.array)
            src = local_node(method, instr.src)
            self._stores[base].append((ARRAY_FIELD, src))
            self._replay_stores(base)
            self._record_site(method, instr, "array", base=base)
        elif isinstance(instr, ir.Invoke):
            self._generate_call(method, instr)
        elif isinstance(instr, ir.StartT):
            node = local_node(method, instr.thread)
            self._starts[node].append((method, instr))
            self._replay_starts(node)
        elif isinstance(instr, ir.Ret):
            if instr.src is not None:
                self._add_copy(local_node(method, instr.src), ret_node(method))

    def _record_site(self, method, instr, kind, base=None, owner_class=None):
        if instr.site_id is None:
            return
        self._site_bases[instr.site_id] = SiteBase(
            site_id=instr.site_id,
            kind=kind,
            field_name=getattr(instr, "field_name", ARRAY_FIELD),
            method=method,
            base=base,
            owner_class=owner_class,
            is_write=isinstance(instr, (ir.PutField, ir.PutStatic, ir.AStore)),
            base_is_this=(
                base is not None and base[2].split("#", 1)[0] == "this"
            ),
            sync_stack=instr.sync_stack,
        )

    def _static_owner(self, class_name: str, field_name: str) -> str:
        info = self._resolved.class_info(class_name)
        owner = info.static_field_owner(field_name)
        return owner.name if owner is not None else class_name

    def _generate_call(self, method: str, instr: ir.Invoke) -> None:
        if instr.static_class is not None:
            info = self._resolved.class_info(instr.static_class)
            target = info.resolve_method(instr.method_name)
            if target is not None and target.is_static:
                self._bind_call(method, instr, target.qualified_name, receiver=None)
            return
        receiver = local_node(method, instr.receiver)
        self._calls[receiver].append((method, instr))
        self._replay_calls(receiver)

    def _bind_call(
        self,
        caller: str,
        instr: ir.Invoke,
        callee: str,
        receiver: Optional[AbstractObject],
    ) -> None:
        key = (caller, instr.call_id, callee, receiver)
        if key in self._resolved_targets:
            return
        self._resolved_targets.add(key)
        self._reach_method(callee)
        edge_key = (caller, instr.call_id, callee)
        if edge_key not in self._call_edge_keys:
            self._call_edge_keys.add(edge_key)
            self._call_edges.append(
                CallEdge(
                    caller=caller,
                    callee=callee,
                    call_id=instr.call_id,
                    sync_stack=instr.sync_stack,
                    loop_depth=instr.loop_depth,
                    receiver_is_this=(instr.receiver == "this"),
                    is_init=instr.is_init,
                )
            )
        function = self._functions.get(callee)
        if function is None:
            return
        params = list(function.params)
        if receiver is not None:
            # Bind `this` to exactly this abstract object (receiver-
            # filtered dispatch).
            if params and params[0] == "this":
                self._add_to(local_node(callee, "this"), receiver)
                params = params[1:]
        for arg, param in zip(instr.args, params):
            self._add_copy(local_node(caller, arg), local_node(callee, param))
        if instr.dest is not None:
            self._add_copy(ret_node(callee), local_node(caller, instr.dest))

    def _bind_start(
        self, caller: str, instr: ir.StartT, obj: AbstractObject
    ) -> None:
        if obj.category is not ObjectCategory.INSTANCE:
            return
        info = self._resolved.classes.get(obj.class_name)
        if info is None:
            return
        run = info.resolve_method("run")
        if run is None or run.is_static:
            return
        callee = run.qualified_name
        key = (caller, id(instr), callee, obj)
        if key in self._start_edge_keys:
            return
        self._start_edge_keys.add(key)
        self._reach_method(callee)
        self._add_to(local_node(callee, "this"), obj)
        self._start_edges.append(
            StartEdge(
                caller=caller,
                run_method=callee,
                thread_object=obj,
                sync_stack=instr.sync_stack,
                loop_depth=instr.loop_depth,
            )
        )

    # ------------------------------------------------------------------
    # Solver core.

    def _add_to(self, node, obj: AbstractObject) -> None:
        if obj not in self._pts[node]:
            self._pts[node].add(obj)
            self._worklist.append((node, obj))

    def _add_copy(self, src, dst) -> None:
        if dst not in self._copy_edges[src]:
            self._copy_edges[src].add(dst)
            for obj in list(self._pts.get(src, ())):
                self._add_to(dst, obj)

    def _replay_loads(self, base) -> None:
        for obj in list(self._pts.get(base, ())):
            self._apply_object_constraints(base, obj)

    _replay_stores = _replay_loads
    _replay_calls = _replay_loads
    _replay_starts = _replay_loads

    def _apply_object_constraints(self, node, obj: AbstractObject) -> None:
        for field_name, dest in self._loads.get(node, ()):
            self._add_copy(field_node(obj, field_name), dest)
        for field_name, src in self._stores.get(node, ()):
            self._add_copy(src, field_node(obj, field_name))
        for caller, instr in self._calls.get(node, ()):
            self._dispatch(caller, instr, obj)
        for caller, instr in self._starts.get(node, ()):
            self._bind_start(caller, instr, obj)

    def _dispatch(self, caller: str, instr: ir.Invoke, obj: AbstractObject) -> None:
        if obj.category is ObjectCategory.INSTANCE:
            info = self._resolved.classes.get(obj.class_name)
            if info is None:
                return
            target = info.resolve_method(instr.method_name)
            if target is not None and not target.is_static:
                self._bind_call(caller, instr, target.qualified_name, receiver=obj)

    def _run_worklist(self) -> None:
        while self._worklist:
            node, obj = self._worklist.pop()
            for dst in list(self._copy_edges.get(node, ())):
                self._add_to(dst, obj)
            self._apply_object_constraints(node, obj)


def _lower_all(resolved: ResolvedProgram) -> dict[str, ir.Function]:
    from .lower import lower_program

    return lower_program(resolved)


def analyze_points_to(
    resolved: ResolvedProgram, functions=None
) -> PointsToResult:
    """Run the whole-program points-to analysis."""
    return PointsToAnalysis(resolved, functions).solve()
