"""Dominator computation (Cooper–Harvey–Kennedy) and dominance frontiers.

The paper's instrumentation optimizer computes dominance during SSA
construction and uses ``dom(S_i, S_j)`` as the executability condition
``Exec`` of the static weaker-than relation (Definition 4; the authors
note post-dominance is useless in Java because nearly every instruction
can throw).  This module supplies:

* immediate dominators via the Cooper–Harvey–Kennedy iterative
  algorithm ("A Simple, Fast Dominance Algorithm");
* the dominator tree and an O(depth) ``dominates`` query;
* dominance frontiers (Cytron et al.), used for SSA phi placement.
"""

from __future__ import annotations

from typing import Optional

from .cfg import FlowGraph


class DominatorInfo:
    """Immediate dominators, dominator tree, and dominance frontiers."""

    def __init__(self, graph: FlowGraph):
        self.graph = graph
        self.idom = self._compute_idoms()
        self.children: dict[int, list[int]] = {b: [] for b in graph.reachable}
        for block_id, idom in self.idom.items():
            if idom is not None and idom != block_id:
                self.children[idom].append(block_id)
        self._depth = self._compute_depths()
        self.frontiers = self._compute_frontiers()

    # ------------------------------------------------------------------
    # Cooper–Harvey–Kennedy iterative immediate dominators.

    def _compute_idoms(self) -> dict[int, Optional[int]]:
        graph = self.graph
        idom: dict[int, Optional[int]] = {b: None for b in graph.reachable}
        idom[0] = 0
        changed = True
        while changed:
            changed = False
            for block_id in graph.rpo:
                if block_id == 0:
                    continue
                new_idom: Optional[int] = None
                for pred in graph.preds[block_id]:
                    if idom[pred] is None:
                        continue
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = self._intersect(new_idom, pred, idom, graph)
                if new_idom is not None and idom[block_id] != new_idom:
                    idom[block_id] = new_idom
                    changed = True
        # Root's idom is conventionally itself; normalize to None for
        # tree consumers but keep `dominates` working.
        idom[0] = None
        return idom

    @staticmethod
    def _intersect(b1: int, b2: int, idom, graph: FlowGraph) -> int:
        index = graph.rpo_index
        finger1, finger2 = b1, b2
        while finger1 != finger2:
            while index[finger1] > index[finger2]:
                finger1 = idom[finger1]
            while index[finger2] > index[finger1]:
                finger2 = idom[finger2]
        return finger1

    def _compute_depths(self) -> dict[int, int]:
        depth = {0: 0}
        stack = [0]
        while stack:
            node = stack.pop()
            for child in self.children[node]:
                depth[child] = depth[node] + 1
                stack.append(child)
        return depth

    # ------------------------------------------------------------------
    # Queries.

    def dominates(self, a: int, b: int) -> bool:
        """True iff block ``a`` dominates block ``b`` (reflexive)."""
        if a == b:
            return True
        node: Optional[int] = b
        while node is not None and self._depth.get(node, 0) > self._depth.get(a, 0):
            node = self.idom[node]
        return node == a

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    # ------------------------------------------------------------------
    # Dominance frontiers (Cytron et al. / CHK formulation).

    def _compute_frontiers(self) -> dict[int, set[int]]:
        frontiers: dict[int, set[int]] = {b: set() for b in self.graph.reachable}
        for block_id in self.graph.reachable:
            preds = self.graph.preds[block_id]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[int] = pred
                stop = self.idom[block_id] if block_id != 0 else None
                while runner is not None and runner != stop:
                    frontiers[runner].add(block_id)
                    if runner == 0:
                        break
                    runner = self.idom[runner]
        return frontiers
