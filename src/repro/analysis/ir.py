"""A lightweight linear IR for the static analyses.

The paper's instrumentation optimizer runs inside Jalapeño's optimizing
compiler on its high-level IR (HIR), where trace pseudo-instructions
are inserted, SSA is built, and value numbering drives the static
weaker-than elimination (Section 6.2).  This module is the analogous
IR for MJ: every method body is lowered (:mod:`repro.analysis.lower`)
to a control-flow graph of basic blocks holding simple register
instructions.

Registers are strings: MJ locals and parameters keep their names
(plus ``this``); intermediate values use ``%N`` temporaries, which are
single-assignment by construction.

Memory-access instructions (``GetField``/``PutField``/``GetStatic``/
``PutStatic``/``ALoad``/``AStore``) carry the ``site_id`` of the AST
access node they were lowered from — these are the paper's ``trace``
pseudo-instruction positions — together with their static ``sync_stack``
(the enclosing sync-block ids, outermost first) and ``loop_depth``
(number of enclosing MJ loops), which the instrumentation and
single-instance analyses consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..lang.errors import SourceLocation


class Instr:
    """Base class of IR instructions.

    ``uses()`` returns the registers read; ``defs()`` the register
    written (or ``None``).  Subclasses set ``is_barrier`` when they can
    transfer control out of the method body's straight-line reasoning —
    calls (which may transitively start/join threads) and explicit
    thread operations.  Barriers invalidate the static weaker-than
    relation's ``Exec`` condition (Definition 4 in the paper).
    """

    is_barrier = False
    #: The site id when this instruction is a memory access, else None.
    site_id: Optional[int] = None

    sync_stack: tuple = ()
    loop_depth: int = 0
    location: SourceLocation = SourceLocation(0, 0, "<ir>")

    def uses(self) -> tuple:
        return ()

    def defs(self) -> Optional[str]:
        return None


@dataclass
class Const(Instr):
    dest: str
    value: object

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = const {self.value!r}"


@dataclass
class Move(Instr):
    dest: str
    src: str

    def uses(self):
        return (self.src,)

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = {self.src}"


@dataclass
class BinOp(Instr):
    dest: str
    op: str
    left: str
    right: str

    def uses(self):
        return (self.left, self.right)

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = {self.left} {self.op} {self.right}"


@dataclass
class UnOp(Instr):
    dest: str
    op: str
    operand: str

    def uses(self):
        return (self.operand,)

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = {self.op}{self.operand}"


@dataclass
class GetField(Instr):
    dest: str
    obj: str
    field_name: str
    site_id: Optional[int] = None

    def uses(self):
        return (self.obj,)

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = {self.obj}.{self.field_name}  [site {self.site_id}]"


@dataclass
class PutField(Instr):
    obj: str
    field_name: str
    src: str
    site_id: Optional[int] = None

    def uses(self):
        return (self.obj, self.src)

    def __str__(self):
        return f"{self.obj}.{self.field_name} = {self.src}  [site {self.site_id}]"


@dataclass
class GetStatic(Instr):
    dest: str
    class_name: str
    field_name: str
    site_id: Optional[int] = None

    def defs(self):
        return self.dest

    def __str__(self):
        return (
            f"{self.dest} = {self.class_name}.{self.field_name}"
            f"  [site {self.site_id}]"
        )


@dataclass
class PutStatic(Instr):
    class_name: str
    field_name: str
    src: str
    site_id: Optional[int] = None

    def uses(self):
        return (self.src,)

    def __str__(self):
        return (
            f"{self.class_name}.{self.field_name} = {self.src}"
            f"  [site {self.site_id}]"
        )


@dataclass
class ALoad(Instr):
    dest: str
    array: str
    index: str
    site_id: Optional[int] = None

    def uses(self):
        return (self.array, self.index)

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = {self.array}[{self.index}]  [site {self.site_id}]"


@dataclass
class AStore(Instr):
    array: str
    index: str
    src: str
    site_id: Optional[int] = None

    def uses(self):
        return (self.array, self.index, self.src)

    def __str__(self):
        return f"{self.array}[{self.index}] = {self.src}  [site {self.site_id}]"


@dataclass
class ArrayLength(Instr):
    dest: str
    array: str

    def uses(self):
        return (self.array,)

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = length({self.array})"


@dataclass
class NewObj(Instr):
    dest: str
    class_name: str
    alloc_id: int

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = new {self.class_name}  [alloc {self.alloc_id}]"


@dataclass
class NewArr(Instr):
    dest: str
    size: str
    alloc_id: int

    def uses(self):
        return (self.size,)

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = newarray({self.size})  [alloc {self.alloc_id}]"


@dataclass
class ClassConst(Instr):
    """Materializes a class object reference (static sync locks)."""

    dest: str
    class_name: str

    def defs(self):
        return self.dest

    def __str__(self):
        return f"{self.dest} = classof {self.class_name}"


@dataclass
class Invoke(Instr):
    """A method call (instance, static, or implicit ``init`` from ``new``)."""

    dest: Optional[str]
    receiver: Optional[str]
    method_name: str
    args: list
    call_id: Optional[int] = None
    static_class: Optional[str] = None
    is_init: bool = False

    is_barrier = True

    def uses(self):
        regs = []
        if self.receiver is not None:
            regs.append(self.receiver)
        regs.extend(self.args)
        return tuple(regs)

    def defs(self):
        return self.dest

    def __str__(self):
        args = ", ".join(self.args)
        target = (
            f"{self.static_class}.{self.method_name}"
            if self.static_class
            else f"{self.receiver}.{self.method_name}"
        )
        prefix = f"{self.dest} = " if self.dest else ""
        return f"{prefix}call {target}({args})"


@dataclass
class MonitorEnter(Instr):
    lock: str
    sync_id: int

    def uses(self):
        return (self.lock,)

    def __str__(self):
        return f"monitorenter {self.lock}  [sync {self.sync_id}]"


@dataclass
class MonitorExit(Instr):
    lock: str
    sync_id: int

    def uses(self):
        return (self.lock,)

    def __str__(self):
        return f"monitorexit {self.lock}  [sync {self.sync_id}]"


@dataclass
class StartT(Instr):
    thread: str

    is_barrier = True

    def uses(self):
        return (self.thread,)

    def __str__(self):
        return f"start {self.thread}"


@dataclass
class JoinT(Instr):
    thread: str

    is_barrier = True

    def uses(self):
        return (self.thread,)

    def __str__(self):
        return f"join {self.thread}"


@dataclass
class WaitI(Instr):
    """``wait target`` — releases the monitor and blocks until notified."""

    target: str

    is_barrier = True

    def uses(self):
        return (self.target,)

    def __str__(self):
        return f"wait {self.target}"


@dataclass
class NotifyI(Instr):
    """``notify target`` / ``notifyall target``."""

    target: str
    notify_all: bool

    is_barrier = True

    def uses(self):
        return (self.target,)

    def __str__(self):
        keyword = "notifyall" if self.notify_all else "notify"
        return f"{keyword} {self.target}"


@dataclass
class BarrierI(Instr):
    """``barrier target, parties`` — cyclic barrier rendezvous."""

    target: str
    parties: str

    is_barrier = True

    def uses(self):
        return (self.target, self.parties)

    def __str__(self):
        return f"barrier {self.target}, {self.parties}"


@dataclass
class PrintI(Instr):
    src: str

    def uses(self):
        return (self.src,)

    def __str__(self):
        return f"print {self.src}"


@dataclass
class AssertI(Instr):
    src: str

    def uses(self):
        return (self.src,)

    def __str__(self):
        return f"assert {self.src}"


@dataclass
class Ret(Instr):
    src: Optional[str] = None

    def uses(self):
        return (self.src,) if self.src is not None else ()

    def __str__(self):
        return f"return {self.src}" if self.src else "return"


@dataclass
class Phi(Instr):
    """SSA phi node (inserted by :mod:`repro.analysis.ssa`).

    ``operands`` maps predecessor block id → register.
    """

    dest: str
    var: str
    operands: dict = field(default_factory=dict)

    def uses(self):
        return tuple(self.operands.values())

    def defs(self):
        return self.dest

    def __str__(self):
        ops = ", ".join(f"B{b}:{r}" for b, r in sorted(self.operands.items()))
        return f"{self.dest} = phi({ops})"


#: Instructions carrying a trace point (memory-access instructions).
ACCESS_INSTRS = (GetField, PutField, GetStatic, PutStatic, ALoad, AStore)


class Block:
    """A basic block: straight-line instructions plus successor edges.

    A block ends either by falling through / jumping (one successor),
    branching on ``branch_reg`` (two successors: [true, false]), or
    returning (no successors).
    """

    def __init__(self, block_id: int):
        self.id = block_id
        self.instrs: list[Instr] = []
        self.successors: list[int] = []
        self.branch_reg: Optional[str] = None

    def append(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def __str__(self):
        lines = [f"B{self.id}:"]
        lines.extend(f"  {instr}" for instr in self.instrs)
        if self.branch_reg is not None:
            lines.append(
                f"  br {self.branch_reg} ? B{self.successors[0]} "
                f": B{self.successors[1]}"
            )
        elif self.successors:
            lines.append(f"  jmp B{self.successors[0]}")
        else:
            lines.append("  (exit)")
        return "\n".join(lines)


class Function:
    """A lowered method: entry block 0, a list of blocks, its registers."""

    def __init__(self, name: str, params: list[str]):
        self.name = name
        self.params = list(params)
        self.blocks: list[Block] = []
        self._next_temp = 0

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def new_temp(self) -> str:
        temp = f"%{self._next_temp}"
        self._next_temp += 1
        return temp

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {block.id: [] for block in self.blocks}
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.id)
        return preds

    def instructions(self) -> Iterator[tuple[int, int, Instr]]:
        """Yield ``(block_id, index, instr)`` for every instruction."""
        for block in self.blocks:
            for index, instr in enumerate(block.instrs):
                yield block.id, index, instr

    def access_instructions(self) -> Iterator[tuple[int, int, Instr]]:
        for block_id, index, instr in self.instructions():
            if isinstance(instr, ACCESS_INSTRS):
                yield block_id, index, instr

    def __str__(self):
        header = f"def {self.name}({', '.join(self.params)})"
        return header + "\n" + "\n".join(str(block) for block in self.blocks)
