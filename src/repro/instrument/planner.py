"""The instrumentation planner — Figure 1's second phase.

Combines the optional static datarace analysis (Section 5), the loop
peeling transformation (Section 6.3), and the static weaker-than
elimination (Section 6.1) into an :class:`InstrumentationPlan`: the
(possibly transformed) program plus the set of access sites that emit
events at runtime.

The planner *transforms the resolved program in place* (loop peeling
rewrites method bodies); callers comparing several configurations
should compile the source once per configuration — the experiment
harness does exactly that.

Configuration flags map to Table 2's columns:

=================  ===========================================
``NoStatic``       ``static_analysis=False`` (every site racy)
``NoDominators``   ``static_weaker=False`` (implies no peeling,
                   which is useless without the elimination)
``NoPeeling``      ``loop_peeling=False``
``Base``           no plan at all: the interpreter runs with an
                   empty trace set and no detector attached
=================  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..analysis.lower import lower_program
from ..analysis.raceset import StaticRaceSet, analyze_static_races
from ..lang.resolver import ResolvedProgram
from .loop_peeling import peel_loops
from .static_weaker import eliminate_redundant_traces


@dataclass(frozen=True)
class PlannerConfig:
    """Which compile-time phases run (Table 2's static dimensions)."""

    static_analysis: bool = True
    static_weaker: bool = True
    loop_peeling: bool = True
    #: Opt-in Section 10 extension: prune accesses to construction-
    #: immutable fields from the static datarace set.
    immutability_analysis: bool = False
    #: When True, array trace points match only when their index value
    #: numbers coincide (the literal reading of Section 6.1's trace
    #: instruction, where ``f`` is the array index).  The default False
    #: matches the runtime's one-location-per-array abstraction
    #: (footnote 1): base equality implies location equality, which is
    #: what makes the sor2-style array-loop eliminations possible.
    array_index_sensitive: bool = False

    def but(self, **changes) -> "PlannerConfig":
        return replace(self, **changes)


#: The paper's full compile-time pipeline.
FULL_PLAN = PlannerConfig()
NO_STATIC = FULL_PLAN.but(static_analysis=False)
#: Disabling the weaker-than check also disables peeling (the paper
#: notes peeling "is useless without that check").
NO_DOMINATORS = FULL_PLAN.but(static_weaker=False, loop_peeling=False)
NO_PEELING = FULL_PLAN.but(loop_peeling=False)


@dataclass
class PlanStats:
    sites_total: int = 0
    sites_after_static: int = 0
    sites_cloned_by_peeling: int = 0
    loops_peeled: int = 0
    sites_eliminated_weaker: int = 0
    sites_instrumented: int = 0


@dataclass
class InstrumentationPlan:
    """The planner's product: what to trace, and why."""

    resolved: ResolvedProgram
    trace_sites: set[int]
    config: PlannerConfig
    stats: PlanStats
    static_races: Optional[StaticRaceSet] = None
    #: site_id -> justifying weaker site (for tooling/tests).
    eliminations: dict[int, int] = field(default_factory=dict)

    def is_traced(self, site_id: int) -> bool:
        return site_id in self.trace_sites


def plan_instrumentation(
    resolved: ResolvedProgram, config: Optional[PlannerConfig] = None
) -> InstrumentationPlan:
    """Run the compile-time phases and produce the instrumentation plan.

    Mutates ``resolved`` when loop peeling is enabled.
    """
    if config is None:
        config = PlannerConfig()
    stats = PlanStats(sites_total=len(resolved.sites))

    # Phase 1: static datarace analysis (on the untransformed program).
    static_races: Optional[StaticRaceSet] = None
    if config.static_analysis:
        static_races = analyze_static_races(
            resolved, immutability=config.immutability_analysis
        )
        racy_origins = set(static_races.racy_sites)
    else:
        racy_origins = set(resolved.sites)

    # Phase 2: loop peeling (clones carry their origin site ids, so the
    # static race facts transfer).
    if config.loop_peeling and config.static_weaker:
        peeling = peel_loops(resolved)
        stats.loops_peeled = peeling.loops_peeled
        stats.sites_cloned_by_peeling = peeling.sites_cloned

    # The candidate trace set after the static phase: every (possibly
    # cloned) site whose origin the static analysis kept.
    candidates = {
        site_id
        for site_id in resolved.sites
        if resolved.origin_of(site_id) in racy_origins
    }
    stats.sites_after_static = len(candidates)

    # Phase 3: static weaker-than elimination, per method.
    eliminations: dict[int, int] = {}
    if config.static_weaker:
        functions = lower_program(resolved)
        for function in functions.values():
            result = eliminate_redundant_traces(
                function,
                traced_sites=candidates,
                array_index_sensitive=config.array_index_sensitive,
            )
            eliminations.update(result.justification)
        candidates -= set(eliminations)
    stats.sites_eliminated_weaker = len(eliminations)
    stats.sites_instrumented = len(candidates)

    return InstrumentationPlan(
        resolved=resolved,
        trace_sites=candidates,
        config=config,
        stats=stats,
        static_races=static_races,
        eliminations=eliminations,
    )
