"""Compile-time instrumentation optimization (Section 6)."""

from .loop_peeling import LoopPeeler, PeelingStats, peel_loops
from .planner import (
    FULL_PLAN,
    NO_DOMINATORS,
    NO_PEELING,
    NO_STATIC,
    InstrumentationPlan,
    PlannerConfig,
    PlanStats,
    plan_instrumentation,
)
from .static_weaker import (
    EliminationResult,
    StaticWeakerAnalysis,
    eliminate_redundant_traces,
)

__all__ = [
    "EliminationResult",
    "FULL_PLAN",
    "InstrumentationPlan",
    "LoopPeeler",
    "NO_DOMINATORS",
    "NO_PEELING",
    "NO_STATIC",
    "PeelingStats",
    "PlanStats",
    "PlannerConfig",
    "StaticWeakerAnalysis",
    "eliminate_redundant_traces",
    "peel_loops",
    "plan_instrumentation",
]
