"""Static weaker-than elimination of redundant trace points (Section 6).

A trace site ``S_j`` can be left uninstrumented when some other traced
site ``S_i`` in the same method always generates a weaker event first:

.. math::

   S_i \\sqsubseteq S_j \\iff Exec(S_i, S_j) \\land a_i \\sqsubseteq a_j
        \\land outer(S_i, S_j)
        \\land valnum(o_i) = valnum(o_j) \\land f_i = f_j

* ``Exec`` (Definition 4) — ``S_i`` dominates ``S_j`` and no method
  invocation (or thread start/join, which calls may hide) lies on any
  path between them.  Dominance comes from the dominator tree built
  during SSA construction; the no-barrier-between condition is a small
  forward must-dataflow ("the trace from ``S_i`` is *available*": ``S_i``
  generates availability, barriers kill it, merge is AND).  The paper
  deliberately uses dominance, not post-dominance, because Java's
  potentially-excepting instructions make post-dominance vacuous.
* ``a_i ⊑ a_j`` — a write covers a later read or write; a read covers
  only a later read.
* ``outer`` — ``S_j`` sits at the same sync-block nesting as ``S_i`` or
  deeper inside it (the enclosing sync-id stack of ``S_i`` is a prefix
  of ``S_j``'s), guaranteeing ``e_i.L ⊆ e_j.L``.
* ``valnum``/field — the base objects provably coincide (and for array
  accesses the paper's trace instruction compares the index too).

Only sites that will actually be instrumented may serve as the weaker
source ``S_i`` (a site pruned by static datarace analysis emits no
event and can justify nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis import ir
from ..analysis.ssa import build_ssa
from ..analysis.valnum import value_numbering
from ..lang.ast import AccessKind

#: Maps IR access instructions to (group, kind).
_WRITE_INSTRS = (ir.PutField, ir.PutStatic, ir.AStore)


@dataclass
class _Site:
    """One access instruction with its position and matching key."""

    instr: ir.Instr
    block: int
    index: int
    key: tuple
    kind: AccessKind
    site_id: int


@dataclass
class EliminationResult:
    """Sites whose traces the static weaker-than relation removed."""

    eliminated: set[int]
    #: site_id -> the site_id of a weaker site justifying the removal.
    justification: dict[int, int]


class StaticWeakerAnalysis:
    """Per-function elimination; run by the planner over every method."""

    def __init__(
        self,
        function: ir.Function,
        traced_sites: Optional[set[int]],
        array_index_sensitive: bool = False,
    ):
        self._function = function
        self._traced = traced_sites
        self._array_index_sensitive = array_index_sensitive
        self._graph, self._dom = build_ssa(function)
        self._vn = value_numbering(function, self._graph)
        #: Availability cache: source (block, index) -> block-entry states.
        self._avail_cache: dict[tuple[int, int], dict[int, bool]] = {}

    # ------------------------------------------------------------------

    def eliminate(self) -> EliminationResult:
        sites = self._collect_sites()
        by_key: dict[tuple, list[_Site]] = {}
        for site in sites:
            by_key.setdefault(site.key, []).append(site)

        eliminated: set[int] = set()
        justification: dict[int, int] = {}
        for group in by_key.values():
            if len(group) < 2:
                continue
            for target in group:
                for source in group:
                    if source.instr is target.instr:
                        continue
                    if source.site_id in eliminated:
                        # An eliminated trace emits nothing; it cannot
                        # justify further removal.  (Chains remain
                        # covered transitively by source's own source.)
                        continue
                    if self._weaker(source, target):
                        eliminated.add(target.site_id)
                        justification[target.site_id] = source.site_id
                        break
        return EliminationResult(eliminated=eliminated, justification=justification)

    # ------------------------------------------------------------------

    def _collect_sites(self) -> list[_Site]:
        sites = []
        for block_id, index, instr in self._function.access_instructions():
            if block_id not in self._graph.reachable:
                continue
            if instr.site_id is None:
                continue
            if self._traced is not None and instr.site_id not in self._traced:
                continue
            key = self._key_of(instr)
            if key is None:
                continue
            kind = (
                AccessKind.WRITE
                if isinstance(instr, _WRITE_INSTRS)
                else AccessKind.READ
            )
            sites.append(
                _Site(
                    instr=instr,
                    block=block_id,
                    index=index,
                    key=key,
                    kind=kind,
                    site_id=instr.site_id,
                )
            )
        return sites

    def _key_of(self, instr: ir.Instr) -> Optional[tuple]:
        """The (f, valnum(o)) matching key; None when the base has no VN."""
        if isinstance(instr, (ir.GetField, ir.PutField)):
            base_vn = self._vn.vn(instr.obj)
            if base_vn is None:
                return None
            return ("field", instr.field_name, base_vn)
        if isinstance(instr, (ir.GetStatic, ir.PutStatic)):
            return ("static", instr.class_name, instr.field_name)
        if isinstance(instr, (ir.ALoad, ir.AStore)):
            base_vn = self._vn.vn(instr.array)
            if base_vn is None:
                return None
            if self._array_index_sensitive:
                index_vn = self._vn.vn(instr.index)
                if index_vn is None:
                    return None
                return ("array", base_vn, index_vn)
            return ("array", base_vn)
        return None

    # ------------------------------------------------------------------
    # The S_i ⊑ S_j test.

    def _weaker(self, source: _Site, target: _Site) -> bool:
        # a_i ⊑ a_j.
        if not (source.kind is target.kind or source.kind is AccessKind.WRITE):
            return False
        # outer(S_i, S_j): S_i's sync stack is a prefix of S_j's.
        if not self._outer(source.instr.sync_stack, target.instr.sync_stack):
            return False
        # Exec condition (a): dominance.
        if not self._dominates(source, target):
            return False
        # Exec condition (b): no call/start/join on any path between.
        return self._available_at(source, target)

    @staticmethod
    def _outer(stack_i: tuple, stack_j: tuple) -> bool:
        return len(stack_i) <= len(stack_j) and stack_j[: len(stack_i)] == stack_i

    def _dominates(self, source: _Site, target: _Site) -> bool:
        if source.block == target.block:
            return source.index < target.index
        return self._dom.strictly_dominates(source.block, target.block)

    # ------------------------------------------------------------------
    # Trace availability dataflow.

    def _available_at(self, source: _Site, target: _Site) -> bool:
        """All paths from ``source`` to ``target`` are barrier-free.

        Forward must-dataflow: the source instruction *generates*
        availability, barrier instructions kill it, and block entry
        availability is the conjunction over predecessors.  Because the
        method entry starts unavailable, availability at the target also
        re-establishes the dominance condition — the explicit dominance
        check above keeps the implementation aligned with the paper's
        formulation (and is cheaper as an early filter).
        """
        entry_avail = self._solve_availability(source)
        state = entry_avail.get(target.block, False)
        block = self._function.blocks[target.block]
        for index in range(target.index):
            state = self._transfer(block.instrs[index], (target.block, index),
                                   source, state)
        return state

    def _solve_availability(self, source: _Site) -> dict[int, bool]:
        key = (source.block, source.index)
        cached = self._avail_cache.get(key)
        if cached is not None:
            return cached

        # Must-analysis: optimistic initialization (all available) and
        # iterate down to the greatest fixpoint; only the method entry
        # is pinned unavailable.
        entry: dict[int, bool] = {b: True for b in self._graph.reachable}
        entry[0] = False
        changed = True
        while changed:
            changed = False
            for block_id in self._graph.rpo:
                if block_id == 0:
                    in_state = False
                else:
                    preds = self._graph.preds[block_id]
                    in_state = bool(preds) and all(
                        self._block_out(pred, entry[pred], source)
                        for pred in preds
                    )
                if entry[block_id] != in_state:
                    entry[block_id] = in_state
                    changed = True
        self._avail_cache[key] = entry
        return entry

    def _block_out(self, block_id: int, in_state: bool, source: _Site) -> bool:
        state = in_state
        for index, instr in enumerate(self._function.blocks[block_id].instrs):
            state = self._transfer(instr, (block_id, index), source, state)
        return state

    @staticmethod
    def _transfer(instr, position, source: _Site, state: bool) -> bool:
        if position == (source.block, source.index):
            return True
        if instr.is_barrier:
            return False
        return state


def eliminate_redundant_traces(
    function: ir.Function,
    traced_sites: Optional[set[int]],
    array_index_sensitive: bool = False,
) -> EliminationResult:
    """Run static weaker-than elimination on one lowered function.

    ``function`` is converted to SSA in place.  ``traced_sites`` is the
    set of sites that will be instrumented (``None`` = all sites).
    """
    analysis = StaticWeakerAnalysis(function, traced_sites, array_index_sensitive)
    return analysis.eliminate()
