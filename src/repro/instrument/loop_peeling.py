"""The loop-peeling instrumentation transformation (Section 6.3).

In-loop trace points produce one redundant access event per iteration:
after the first iteration, the event is identical to the one already
recorded.  The static weaker-than relation cannot remove the trace —
the first iteration's event *is* needed — and classic loop-invariant
hoisting is blocked by potentially-excepting instructions.  The paper's
answer is to peel the first iteration:

.. code-block:: text

    while (c) { body }
        ⇒
    if (c) { body' ; while (c) { body } }

where ``body'`` is a clone of the body.  The clone's trace points then
*dominate* the in-loop ones with no intervening start/join, so the
static weaker-than elimination removes the traces inside the residual
loop; the access is traced at most once.

Cloned access sites receive fresh ``site_id``\\ s whose ``origin``
points at the site they were derived from, so static datarace facts
computed before peeling apply to the clones.  Cloned sync blocks get
fresh ``sync_id``\\ s — a clone's sync block is a *different lock
acquisition*, and the ``outer`` condition must not conflate the two.
Nested loops are peeled innermost-first, so the peeled first iteration
of an outer loop contains already-peeled inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.resolver import ResolvedProgram


@dataclass
class PeelingStats:
    loops_seen: int = 0
    loops_peeled: int = 0
    sites_cloned: int = 0


class LoopPeeler:
    """Applies loop peeling to every method of a resolved program.

    The transformation mutates the program in place; callers that need
    the unpeeled program should re-compile the source.
    """

    def __init__(self, resolved: ResolvedProgram):
        self._resolved = resolved
        self.stats = PeelingStats()

    def peel_program(self) -> PeelingStats:
        for method in self._resolved.methods:
            self._peel_block(method.body)
        return self.stats

    # ------------------------------------------------------------------

    def _peel_block(self, block: ast.Block) -> None:
        new_body: list[ast.Stmt] = []
        for stmt in block.body:
            new_body.append(self._peel_stmt(stmt))
        block.body = new_body

    def _peel_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.While):
            # Innermost-first: handle loops inside the body, then this one.
            self._peel_block(stmt.body)
            return self._peel_while(stmt)
        if isinstance(stmt, ast.If):
            self._peel_block(stmt.then_block)
            if stmt.else_block is not None:
                self._peel_block(stmt.else_block)
            return stmt
        if isinstance(stmt, ast.Sync):
            self._peel_block(stmt.body)
            return stmt
        if isinstance(stmt, ast.Block):
            self._peel_block(stmt)
            return stmt
        return stmt

    def _peel_while(self, loop: ast.While) -> ast.Stmt:
        self.stats.loops_seen += 1
        if loop.peeled:
            return loop
        if not any(True for _ in ast.access_sites(loop)):
            # No trace points anywhere in the loop: peeling buys nothing.
            return loop
        self.stats.loops_peeled += 1

        peeled_cond = self._clone_expr(loop.cond)
        peeled_body = self._clone_block(loop.body)
        loop.peeled = True

        guard = ast.If(
            cond=peeled_cond,
            then_block=ast.Block(
                body=[*peeled_body.body, loop],
                location=loop.location,
            ),
            else_block=None,
            location=loop.location,
        )
        guard.stmt_id = self._resolved.id_allocator.stmt_id()
        guard.then_block.stmt_id = self._resolved.id_allocator.stmt_id()
        return guard

    # ------------------------------------------------------------------
    # Cloning with fresh identifiers.

    def _clone_block(self, block: ast.Block) -> ast.Block:
        clone = ast.Block(
            body=[self._clone_stmt(stmt) for stmt in block.body],
            location=block.location,
        )
        clone.stmt_id = self._resolved.id_allocator.stmt_id()
        return clone

    def _clone_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        ids = self._resolved.id_allocator
        if isinstance(stmt, ast.VarDecl):
            clone = ast.VarDecl(
                name=stmt.name,
                init=self._clone_expr(stmt.init),
                location=stmt.location,
            )
        elif isinstance(stmt, ast.AssignLocal):
            clone = ast.AssignLocal(
                name=stmt.name,
                value=self._clone_expr(stmt.value),
                location=stmt.location,
            )
        elif isinstance(stmt, ast.FieldWrite):
            clone = ast.FieldWrite(
                obj=self._clone_expr(stmt.obj),
                field_name=stmt.field_name,
                value=self._clone_expr(stmt.value),
                location=stmt.location,
            )
            self._register_clone(clone, stmt)
        elif isinstance(stmt, ast.StaticFieldWrite):
            clone = ast.StaticFieldWrite(
                class_name=stmt.class_name,
                field_name=stmt.field_name,
                value=self._clone_expr(stmt.value),
                location=stmt.location,
            )
            self._register_clone(clone, stmt)
        elif isinstance(stmt, ast.ArrayWrite):
            clone = ast.ArrayWrite(
                array=self._clone_expr(stmt.array),
                index=self._clone_expr(stmt.index),
                value=self._clone_expr(stmt.value),
                location=stmt.location,
            )
            self._register_clone(clone, stmt)
        elif isinstance(stmt, ast.If):
            clone = ast.If(
                cond=self._clone_expr(stmt.cond),
                then_block=self._clone_block(stmt.then_block),
                else_block=(
                    self._clone_block(stmt.else_block)
                    if stmt.else_block is not None
                    else None
                ),
                location=stmt.location,
            )
        elif isinstance(stmt, ast.While):
            clone = ast.While(
                cond=self._clone_expr(stmt.cond),
                body=self._clone_block(stmt.body),
                location=stmt.location,
                peeled=stmt.peeled,
            )
        elif isinstance(stmt, ast.Sync):
            clone = ast.Sync(
                lock=self._clone_expr(stmt.lock),
                body=self._clone_block(stmt.body),
                location=stmt.location,
            )
            clone.sync_id = ids.sync_id()
        elif isinstance(stmt, ast.Start):
            clone = ast.Start(
                thread=self._clone_expr(stmt.thread), location=stmt.location
            )
        elif isinstance(stmt, ast.Join):
            clone = ast.Join(
                thread=self._clone_expr(stmt.thread), location=stmt.location
            )
        elif isinstance(stmt, ast.Wait):
            clone = ast.Wait(
                target=self._clone_expr(stmt.target), location=stmt.location
            )
        elif isinstance(stmt, ast.Notify):
            clone = ast.Notify(
                target=self._clone_expr(stmt.target),
                notify_all=stmt.notify_all,
                location=stmt.location,
            )
        elif isinstance(stmt, ast.Barrier):
            clone = ast.Barrier(
                target=self._clone_expr(stmt.target),
                parties=self._clone_expr(stmt.parties),
                location=stmt.location,
            )
        elif isinstance(stmt, ast.Return):
            clone = ast.Return(
                value=(
                    self._clone_expr(stmt.value)
                    if stmt.value is not None
                    else None
                ),
                location=stmt.location,
            )
        elif isinstance(stmt, ast.Print):
            clone = ast.Print(
                value=self._clone_expr(stmt.value), location=stmt.location
            )
        elif isinstance(stmt, ast.Assert):
            clone = ast.Assert(
                cond=self._clone_expr(stmt.cond), location=stmt.location
            )
        elif isinstance(stmt, ast.ExprStmt):
            clone = ast.ExprStmt(
                expr=self._clone_expr(stmt.expr), location=stmt.location
            )
        elif isinstance(stmt, ast.Block):
            clone = self._clone_block(stmt)
            return clone
        else:
            raise TypeError(f"unhandled statement {type(stmt).__name__}")
        clone.stmt_id = ids.stmt_id()
        return clone

    def _clone_expr(self, expr: ast.Expr) -> ast.Expr:
        ids = self._resolved.id_allocator
        if isinstance(
            expr,
            (
                ast.IntLiteral,
                ast.BoolLiteral,
                ast.StringLiteral,
                ast.NullLiteral,
                ast.VarRef,
                ast.ThisRef,
                ast.ClassRef,
            ),
        ):
            return expr  # Immutable leaves can be shared.
        if isinstance(expr, ast.Binary):
            return ast.Binary(
                op=expr.op,
                left=self._clone_expr(expr.left),
                right=self._clone_expr(expr.right),
                location=expr.location,
            )
        if isinstance(expr, ast.Unary):
            return ast.Unary(
                op=expr.op,
                operand=self._clone_expr(expr.operand),
                location=expr.location,
            )
        if isinstance(expr, ast.FieldRead):
            clone = ast.FieldRead(
                obj=self._clone_expr(expr.obj),
                field_name=expr.field_name,
                location=expr.location,
            )
            self._register_clone(clone, expr)
            return clone
        if isinstance(expr, ast.StaticFieldRead):
            clone = ast.StaticFieldRead(
                class_name=expr.class_name,
                field_name=expr.field_name,
                location=expr.location,
            )
            self._register_clone(clone, expr)
            return clone
        if isinstance(expr, ast.ArrayRead):
            clone = ast.ArrayRead(
                array=self._clone_expr(expr.array),
                index=self._clone_expr(expr.index),
                location=expr.location,
            )
            self._register_clone(clone, expr)
            return clone
        if isinstance(expr, ast.New):
            clone = ast.New(
                class_name=expr.class_name,
                args=[self._clone_expr(arg) for arg in expr.args],
                location=expr.location,
            )
            clone.alloc_id = ids.alloc_id()
            return clone
        if isinstance(expr, ast.NewArray):
            clone = ast.NewArray(
                size=self._clone_expr(expr.size), location=expr.location
            )
            clone.alloc_id = ids.alloc_id()
            return clone
        if isinstance(expr, ast.Call):
            clone = ast.Call(
                receiver=(
                    self._clone_expr(expr.receiver)
                    if expr.receiver is not None
                    else None
                ),
                method_name=expr.method_name,
                args=[self._clone_expr(arg) for arg in expr.args],
                location=expr.location,
                static_class=expr.static_class,
            )
            clone.call_id = ids.call_id()
            return clone
        raise TypeError(f"unhandled expression {type(expr).__name__}")

    def _register_clone(self, clone, original) -> None:
        template = self._resolved.sites[original.site_id]
        self._resolved.register_cloned_site(clone, template)
        self.stats.sites_cloned += 1


def peel_loops(resolved: ResolvedProgram) -> PeelingStats:
    """Apply loop peeling to the whole program, in place."""
    return LoopPeeler(resolved).peel_program()
