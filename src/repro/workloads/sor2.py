"""``sor2`` — successive over-relaxation analog of the ETH sor2 benchmark.

The paper derived sor2 from sor by *manually hoisting loop-invariant
array subscripts out of inner loops*, noting the hoist "has significant
impact on the effectiveness of our optimizations": with row references
hoisted, the inner-loop array accesses have loop-invariant bases, so
loop peeling plus the dominator-based static weaker-than relation
eliminate the per-element traces (Table 2: sor2 is the benchmark where
``NoDominators`` costs 316% and ``NoPeeling`` 226% against Full's 13%).
This workload is written in the hoisted style.

Concurrency structure:

* ``main`` builds a grid of row arrays; two workers relax disjoint row
  bands over several phases, reading their band-boundary neighbor rows;
* phases are separated by a **barrier**: the arrival count is updated
  under the barrier's monitor, but workers *spin on the generation
  field without a lock* — the classic barrier implementation;
* the races reported are therefore exactly the paper's sor2 story:
  "not truly unsynchronized accesses; the program uses barrier
  synchronization, which is not captured by our algorithm" — the
  barrier generation, a lock-free ``converged`` flag, and the boundary
  rows shared between the bands (4 objects, as in the paper's row).
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 8) -> str:
    """``scale`` = rows per band; the grid is ``2*scale+2`` rows."""
    rows_per_band = max(2, scale)
    total_rows = 2 * rows_per_band
    width = max(6, scale * 2)
    phases = 4
    return f"""
// sor2: red-black successive over-relaxation with barriers (ETH analog).
class Main {{
  static def main() {{
    var grid = new Grid({total_rows}, {width});
    var bar = new Barrier(2);
    var state = new SolverState();
    var w1 = new SorWorker(grid, bar, state, 0, {rows_per_band}, {phases});
    var w2 = new SorWorker(grid, bar, state, {rows_per_band},
                           {total_rows}, {phases});
    start w1;
    start w2;
    join w1;
    join w2;
    print "checksum=" + grid.checksum();
  }}
}}

class Grid {{
  field rows;
  field nrows;
  field width;
  def init(nrows, width) {{
    this.nrows = nrows;
    this.width = width;
    var rows = newarray(nrows);
    var i = 0;
    while (i < nrows) {{
      var row = newarray(width);
      var j = 0;
      while (j < width) {{
        row[j] = (i * 31 + j * 17) % 97;
        j = j + 1;
      }}
      rows[i] = row;
      i = i + 1;
    }}
    this.rows = rows;
  }}
  def checksum() {{
    var rows = this.rows;
    var total = 0;
    var i = 0;
    while (i < this.nrows) {{
      var row = rows[i];
      var j = 0;
      while (j < this.width) {{
        total = total + row[j];
        j = j + 1;
      }}
      i = i + 1;
    }}
    return total;
  }}
}}

class Barrier {{
  field parties;
  field count;           // Guarded by the barrier's own monitor.
  field generation;      // RACE (by design): lock-free spin reads.
  def init(parties) {{
    this.parties = parties;
    this.count = 0;
    this.generation = 0;
  }}
  def await(target) {{
    sync (this) {{
      this.count = this.count + 1;
      if (this.count == this.parties) {{
        this.count = 0;
        this.generation = this.generation + 1;
      }}
    }}
    // Spin without the lock until everyone arrived — the barrier
    // idiom whose reads our datarace definition flags (Section 8.3).
    var waiting = true;
    while (waiting) {{
      if (this.generation >= target) {{
        waiting = false;
      }}
    }}
  }}
}}

class SolverState {{
  field converged;       // RACE (by design): barrier-protected flag,
  field residual;        // written and read with no common lock.
}}

class SorWorker {{
  field grid;
  field bar;
  field state;
  field fromRow;
  field toRow;
  field phases;
  def init(grid, bar, state, fromRow, toRow, phases) {{
    this.grid = grid;
    this.bar = bar;
    this.state = state;
    this.fromRow = fromRow;
    this.toRow = toRow;
    this.phases = phases;
  }}
  def relaxRow(row, width) {{
    // Hoisted style: `row` is loop-invariant, so peeling + the static
    // weaker-than relation remove the in-loop traces.
    var j = 1;
    while (j < width - 1) {{
      row[j] = (row[j - 1] + row[j + 1] + row[j] * 2) / 4;
      j = j + 1;
    }}
  }}
  def run() {{
    var grid = this.grid;
    var rows = grid.rows;
    var width = grid.width;
    var bar = this.bar;
    var state = this.state;
    var phase = 0;
    while (phase < this.phases) {{
      var i = this.fromRow;
      while (i < this.toRow) {{
        var row = rows[i];
        relaxRow(row, width);
        // Boundary coupling: blend with the neighbor band's edge row
        // (shared across threads, synchronized only by the barrier).
        if (i == this.fromRow) {{
          if (i > 0) {{
            var above = rows[i - 1];
            row[1] = (row[1] + above[1]) / 2;
          }}
        }}
        if (i == this.toRow - 1) {{
          if (i < grid.nrows - 1) {{
            var below = rows[i + 1];
            row[2] = (row[2] + below[2]) / 2;
          }}
        }}
        i = i + 1;
      }}
      state.residual = phase;            // Lock-free shared write.
      bar.await(phase + 1);
      phase = phase + 1;
    }}
    if (state.residual >= this.phases - 1) {{
      state.converged = true;            // Lock-free shared write.
    }}
  }}
}}
"""


SPEC = WorkloadSpec(
    name="sor2",
    description="Successive over-relaxation with barriers (ETH sor2 analog)",
    source=source,
    default_scale=8,
    threads=3,
    cpu_bound=True,
    expected_full_objects=4,
    paper_table3=(4, 4, 1009),
    # `converged` also races in principle, but it is written exactly
    # once per worker, so the first write is absorbed by the ownership
    # model and the pair never materializes; the SolverState object is
    # reported through `residual` regardless.
    expected_racy_fields=frozenset({"generation", "residual"}),
)
