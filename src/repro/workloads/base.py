"""Workload infrastructure.

Each workload module recreates one benchmark from the paper's Table 1
as an MJ program with the same *concurrency structure* and — crucially
for Table 3 — the same *race inventory* documented in Section 8.3.
Sizes are parameterized by ``scale`` so benchmarks can trade runtime
for fidelity.

A :class:`WorkloadSpec` bundles the source generator with the facts the
test-suite asserts: how many threads run, which objects are expected to
be reported racy under the Full configuration, and the qualitative
expectations for the FieldsMerged / NoOwnership variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark program and its expected behaviour."""

    name: str
    description: str
    source: Callable[[int], str]
    default_scale: int
    #: Total dynamic threads including main (Table 1's column).
    threads: int
    #: Whether Table 2 measures it (the paper skips the interactive ones).
    cpu_bound: bool
    #: Expected object count reported under Full (None = assert-free).
    expected_full_objects: Optional[int] = None
    #: Paper's Table 3 row, for EXPERIMENTS.md: (Full, FieldsMerged,
    #: NoOwnership).
    paper_table3: Optional[tuple] = None
    #: Names of fields expected to appear in Full race reports.
    expected_racy_fields: frozenset = frozenset()

    def build(self, scale: Optional[int] = None) -> str:
        """Generate the MJ source at the given (or default) scale."""
        return self.source(scale if scale is not None else self.default_scale)

    def loc(self, scale: Optional[int] = None) -> int:
        """Non-blank source lines (Table 1's Lines of Code analog)."""
        return sum(
            1 for line in self.build(scale).splitlines() if line.strip()
        )
