"""``elevator2`` — a discrete-event elevator simulator (ETH elevator analog).

The paper's elevator is the *correctly synchronized* benchmark: every
access to shared state goes through the ``Controls`` monitor, so the
Full configuration reports **zero** races (Table 3), while disabling
the ownership model floods the output with spurious reports about the
simulation state that ``main`` initializes before starting the elevator
threads (paper: 0 → 16).

Five dynamic threads as in Table 1: main plus four elevator cars.  The
original is interactive/real-time, so (like the paper) it contributes
accuracy numbers only, not Table 2 timings.
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 12) -> str:
    """``scale`` = number of pending floor calls to service."""
    floors = max(4, scale)
    return f"""
// elevator2: lock-disciplined discrete event simulator (ETH analog).
class Main {{
  static def main() {{
    var controls = new Controls({floors});
    var i = 0;
    while (i < {floors}) {{
      controls.post(i, (i * 3) % {floors});
      i = i + 1;
    }}
    var e1 = new Elevator(controls, 1);
    var e2 = new Elevator(controls, 2);
    var e3 = new Elevator(controls, 3);
    var e4 = new Elevator(controls, 4);
    start e1;
    start e2;
    start e3;
    start e4;
    join e1;
    join e2;
    join e3;
    join e4;
    print "served=" + controls.servedCount();
  }}
}}

class Call {{
  field fromFloor;
  field toFloor;
  field served;
  def init(fromFloor, toFloor) {{
    this.fromFloor = fromFloor;
    this.toFloor = toFloor;
    this.served = false;
  }}
}}

class Controls {{
  field calls;       // Array of Call objects (all access synchronized).
  field pending;
  field served;
  field capacity;
  def init(capacity) {{
    this.capacity = capacity;
    this.calls = newarray(capacity);
    this.pending = 0;
    this.served = 0;
  }}
  sync def post(fromFloor, toFloor) {{
    var calls = this.calls;
    calls[this.pending] = new Call(fromFloor, toFloor);
    this.pending = this.pending + 1;
  }}
  sync def claim() {{
    if (this.pending == 0) {{
      return null;
    }}
    this.pending = this.pending - 1;
    var calls = this.calls;
    var call = calls[this.pending];
    calls[this.pending] = null;
    return call;
  }}
  sync def complete(call) {{
    call.served = true;
    this.served = this.served + 1;
  }}
  sync def servedCount() {{
    return this.served;
  }}
}}

class Elevator {{
  field controls;
  field id;
  field position;    // Thread-specific: only ever touched via `this`.
  field trips;
  def init(controls, id) {{
    this.controls = controls;
    this.id = id;
    this.position = 0;
    this.trips = 0;
  }}
  def moveTo(floor) {{
    // Simulated travel: pure thread-local work.
    var pos = this.position;
    while (pos != floor) {{
      if (pos < floor) {{
        pos = pos + 1;
      }} else {{
        pos = pos - 1;
      }}
    }}
    this.position = pos;
  }}
  def run() {{
    var controls = this.controls;
    var working = true;
    while (working) {{
      var call = controls.claim();
      if (call == null) {{
        working = false;
      }} else {{
        moveTo(call.fromFloor);
        moveTo(call.toFloor);
        this.trips = this.trips + 1;
        controls.complete(call);
      }}
    }}
  }}
}}
"""


SPEC = WorkloadSpec(
    name="elevator2",
    description="Lock-disciplined discrete event simulator (ETH elevator analog)",
    source=source,
    default_scale=12,
    threads=5,
    cpu_bound=False,
    expected_full_objects=0,
    paper_table3=(0, 0, 16),
    expected_racy_fields=frozenset(),
)
