"""``mtrt2`` — a multithreaded ray-tracer analog of SPECJVM98's mtrt.

Concurrency structure mirrored from the paper's account (Sections 8.1
and 8.3):

* ``main`` builds a large read-only scene (triangle array + materials)
  and starts two render workers, each shading a band of rows;
* the inner shading loop allocates short-lived per-ray vectors —
  **thread-local** objects whose accesses the static escape analysis
  removes entirely (this is what makes the ``NoStatic`` configuration
  explode: every per-ray access gets instrumented, the analog of the
  paper's Jalapeño running out of memory);
* each worker accumulates into its own fields — **thread-specific**
  state (Section 5.4), also statically removed;
* both workers update shared I/O statistics under a common lock
  ``syncObject``, and ``main`` reads the statistics after joining both
  workers *without* a lock.  With the ``S_j`` join pseudo-locks the
  three locksets ``{S1, sync}``, ``{S2, sync}``, ``{S1, S2}`` pairwise
  intersect, so no race is reported — while Eraser's single-common-lock
  rule produces its known spurious report (Section 8.3);
* **race 1**: ``Scene.threadCount`` is decremented by both workers with
  no synchronization (the paper: value may become invalid, fortunately
  unused);
* **race 2**: ``Stream.startOfLine`` is written by both workers without
  synchronization (the paper: the SPEC harness's
  ``ValidityCheckOutputStream.startOfLine``, can corrupt output).

Expected under Full: exactly 2 racy objects — the paper's mtrt row.
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 8) -> str:
    """``scale`` = rows per worker band; width and triangles follow it."""
    width = max(4, scale)
    ntris = max(6, scale * 2)
    return f"""
// mtrt2: multithreaded ray tracer kernel (SPECJVM98 mtrt analog).
class Main {{
  static def main() {{
    var scene = new Scene({ntris}, {width});
    var stats = new Stats();
    var syncObject = new Lock();
    var stream = new Stream();
    stream.startOfLine = true;
    scene.threadCount = 2;

    var r1 = new RayWorker(scene, stats, syncObject, stream, 0, {scale});
    var r2 = new RayWorker(scene, stats, syncObject, stream, {scale}, {2 * scale});
    start r1;
    start r2;
    join r1;
    join r2;

    // Post-join, lock-free statistics read: the join pseudo-locks make
    // this safe; Eraser flags it (no single common lock).
    print "rays=" + stats.raysTraced;
    print "hits=" + stats.hits;
  }}
}}

class Lock {{ }}

class Scene {{
  field tris;
  field materials;
  field camera;
  field ntris;
  field width;
  field threadCount;
  def init(ntris, width) {{
    this.ntris = ntris;
    this.width = width;
    var tris = newarray(ntris);
    var materials = newarray(ntris);
    var i = 0;
    while (i < ntris) {{
      tris[i] = (i * 37) % 101;
      materials[i] = (i * 53) % 31;
      i = i + 1;
    }}
    this.tris = tris;
    this.materials = materials;
    this.camera = new Camera(0, 0, 0 - 10);
  }}
}}

class Camera {{
  field x;
  field y;
  field z;
  def init(x, y, z) {{
    this.x = x;
    this.y = y;
    this.z = z;
  }}
}}

class Stats {{
  field raysTraced;
  field hits;
  def init() {{
    this.raysTraced = 0;
    this.hits = 0;
  }}
}}

class Stream {{
  field startOfLine;
}}

// A short-lived per-ray vector: never escapes the shading call, so the
// static escape analysis proves every access below race-free.
class Vec {{
  field x;
  field y;
  field z;
  def init(x, y, z) {{
    this.x = x;
    this.y = y;
    this.z = z;
  }}
  def dot(other) {{
    return this.x * other.x + this.y * other.y + this.z * other.z;
  }}
  def scale(k) {{
    this.x = this.x * k;
    this.y = this.y * k;
    this.z = this.z * k;
  }}
}}

class RayWorker {{
  field scene;
  field stats;
  field syncObject;
  field stream;
  field fromRow;
  field toRow;
  field accRays;    // Thread-specific accumulators (Section 5.4):
  field accHits;    // only ever touched via `this` in init/run/shade.
  def init(scene, stats, syncObject, stream, fromRow, toRow) {{
    this.scene = scene;
    this.stats = stats;
    this.syncObject = syncObject;
    this.stream = stream;
    this.fromRow = fromRow;
    this.toRow = toRow;
    this.accRays = 0;
    this.accHits = 0;
  }}
  def shade(x, y) {{
    var scene = this.scene;
    var dir = new Vec(x, y, 1);
    var origin = new Vec(0, 0, 0 - y);
    dir.scale(3);
    var camera = scene.camera;
    var tris = scene.tris;
    var materials = scene.materials;
    var n = scene.ntris;
    var best = 1000000;
    var i = 0;
    while (i < n) {{
      var t = tris[i];
      var d = dir.dot(origin) + t * (x + 1) - y + camera.z;
      if (d > 0) {{
        var m = materials[i];
        if (d + m < best) {{
          best = d + m;
        }}
      }}
      i = i + 1;
    }}
    this.accRays = this.accRays + 1;
    if (best < 1000000) {{
      this.accHits = this.accHits + 1;
    }}
    return best;
  }}
  def run() {{
    var y = this.fromRow;
    while (y < this.toRow) {{
      var x = 0;
      var w = this.scene.width;
      while (x < w) {{
        shade(x, y);
        x = x + 1;
      }}
      y = y + 1;
    }}

    // Shared statistics, correctly guarded by the common lock.
    sync (this.syncObject) {{
      var s = this.stats;
      s.raysTraced = s.raysTraced + this.accRays;
      s.hits = s.hits + this.accHits;
    }}

    // RACE 2: unsynchronized write to the validity-check stream.
    var st = this.stream;
    st.startOfLine = false;

    // RACE 1: unsynchronized read-modify-write of the thread counter.
    var sc = this.scene;
    sc.threadCount = sc.threadCount - 1;
  }}
}}
"""


SPEC = WorkloadSpec(
    name="mtrt2",
    description="Multithreaded ray tracer (SPECJVM98 mtrt analog)",
    source=source,
    default_scale=8,
    threads=3,
    cpu_bound=True,
    expected_full_objects=2,
    paper_table3=(2, 2, 12),
    expected_racy_fields=frozenset({"threadCount", "startOfLine"}),
)
