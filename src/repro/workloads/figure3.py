"""The Figure 3 loop-peeling kernel.

A loop writing ``a.f`` every iteration through a loop-invariant base:
the in-loop trace is redundant after the first iteration, but cannot be
removed without peeling (the first iteration's event is required and a
potentially-excepting instruction blocks hoisting).  Two threads run
the kernel on a shared object so the site is statically racy and the
trace actually matters.

Used by ``benchmarks/bench_fig3_loop_peeling.py`` to regenerate the
figure's effect: with peeling the kernel emits O(1) events per thread;
without, O(iterations).
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 200) -> str:
    return f"""
// Figure 3 of Choi et al., PLDI 2002: redundant in-loop traces.
class Main {{
  static def main() {{
    var shared = new A();
    var w1 = new Kernel(shared);
    var w2 = new Kernel(shared);
    start w1;
    start w2;
    join w1;
    join w2;
    print shared.f;
  }}
}}

class A {{
  field f;
}}

class Kernel {{
  field a;
  def init(shared) {{
    this.a = shared;
  }}
  def run() {{
    var a = this.a;
    var i = 0;
    while (i < {scale}) {{
      // The paper's S11 PEI is implicit: in MJ (as in Java) the field
      // write below can throw on a null base.
      a.f = i;                      // S12/S13: write + trace point.
      i = i + 1;
    }}
  }}
}}
"""


SPEC = WorkloadSpec(
    name="figure3",
    description="Loop-peeling kernel (Figure 3): invariant-base loop writes",
    source=source,
    default_scale=200,
    threads=3,
    cpu_bound=True,
    expected_racy_fields=frozenset({"f"}),
)
