"""A seeded random MJ program generator for differential stress testing.

Generates small multithreaded programs with a controlled shape:

* one shared data class with several fields, several lock objects;
* 2–3 worker threads whose bodies mix plain field accesses, accesses
  under randomly chosen sync blocks, bounded loops, branches, local
  arithmetic, and thread-local allocations;
* ``main`` initializes everything, starts the workers, joins them, and
  reads the shared state afterwards.

Structural guarantees, so every generated program is usable in
property tests:

* **termination** — all loops are counter-bounded, there is no
  recursion;
* **deadlock freedom** — nested sync blocks always acquire locks in
  ascending lock-index order (a global lock order);
* **determinism** — no input, no time; a given (program seed, schedule
  seed) pair fully determines the execution.

The generator is used by ``tests/property/test_fuzz.py`` to check, on
hundreds of programs: interpreter robustness, loop-peeling semantics
preservation, schedule determinism, and the Definition 1 reporting
guarantee against the FullRace oracle on live event streams.
"""

from __future__ import annotations

import random


class ProgramFuzzer:
    """Generates one random MJ program per seed."""

    def __init__(
        self,
        seed: int,
        n_workers: int = 2,
        n_fields: int = 3,
        n_locks: int = 2,
        max_stmts: int = 6,
        max_depth: int = 2,
    ):
        self._rng = random.Random(seed)
        self.n_workers = min(max(n_workers, 1), 4)
        self.n_fields = min(max(n_fields, 1), 5)
        self.n_locks = min(max(n_locks, 1), 4)
        self.max_stmts = max_stmts
        self.max_depth = max_depth
        self._temp = 0

    # ------------------------------------------------------------------

    def generate(self) -> str:
        fields = [f"f{i}" for i in range(self.n_fields)]
        parts = [self._main(), self._shared(fields), "class LockObj { }"]
        for worker in range(self.n_workers):
            parts.append(self._worker(worker, fields))
        parts.append("class Pad { field v; }")
        return "\n\n".join(parts)

    # ------------------------------------------------------------------

    def _main(self) -> str:
        lines = ["    var shared = new Shared();"]
        for i in range(self.n_fields):
            lines.append(f"    shared.f{i} = {self._rng.randint(0, 9)};")
        for i in range(self.n_locks):
            lines.append(f"    var lock{i} = new LockObj();")
        lock_args = ", ".join(f"lock{i}" for i in range(self.n_locks))
        for w in range(self.n_workers):
            lines.append(f"    var w{w} = new Worker{w}(shared, {lock_args});")
        for w in range(self.n_workers):
            lines.append(f"    start w{w};")
        for w in range(self.n_workers):
            lines.append(f"    join w{w};")
        for i in range(self.n_fields):
            lines.append(f"    print shared.f{i};")
        body = "\n".join(lines)
        return f"class Main {{\n  static def main() {{\n{body}\n  }}\n}}"

    def _shared(self, fields) -> str:
        decls = "\n".join(f"  field {f};" for f in fields)
        return f"class Shared {{\n{decls}\n}}"

    def _worker(self, index: int, fields) -> str:
        lock_fields = "\n".join(
            f"  field lock{i};" for i in range(self.n_locks)
        )
        lock_params = ", ".join(f"l{i}" for i in range(self.n_locks))
        lock_inits = "\n".join(
            f"    this.lock{i} = l{i};" for i in range(self.n_locks)
        )
        self._temp = 0
        body = self._block(fields, depth=0, min_lock=0, indent="    ")
        return (
            f"class Worker{index} {{\n"
            f"  field s;\n{lock_fields}\n"
            f"  def init(shared, {lock_params}) {{\n"
            f"    this.s = shared;\n{lock_inits}\n  }}\n"
            f"  def run() {{\n"
            f"    var s = this.s;\n"
            f"    var acc = 0;\n"
            f"{body}"
            f"  }}\n}}"
        )

    # ------------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._temp += 1
        return f"{prefix}{self._temp}"

    def _block(self, fields, depth: int, min_lock: int, indent: str) -> str:
        lines = []
        for _ in range(self._rng.randint(1, self.max_stmts)):
            lines.append(self._stmt(fields, depth, min_lock, indent))
        return "".join(lines)

    def _stmt(self, fields, depth: int, min_lock: int, indent: str) -> str:
        choices = ["read", "write", "rmw", "local", "pad"]
        if depth < self.max_depth:
            choices += ["sync", "loop", "branch"]
        kind = self._rng.choice(choices)
        field = self._rng.choice(fields)

        if kind == "read":
            temp = self._fresh("r")
            return f"{indent}var {temp} = s.{field};\n"
        if kind == "write":
            return f"{indent}s.{field} = acc + {self._rng.randint(0, 9)};\n"
        if kind == "rmw":
            return f"{indent}s.{field} = s.{field} + 1;\n"
        if kind == "local":
            return f"{indent}acc = acc * 2 + {self._rng.randint(0, 5)};\n"
        if kind == "pad":
            temp = self._fresh("p")
            return (
                f"{indent}var {temp} = new Pad();\n"
                f"{indent}{temp}.v = acc;\n"
                f"{indent}acc = acc + {temp}.v;\n"
            )
        if kind == "sync" and min_lock < self.n_locks:
            lock = self._rng.randint(min_lock, self.n_locks - 1)
            inner = self._block(fields, depth + 1, lock + 1, indent + "  ")
            return (
                f"{indent}sync (this.lock{lock}) {{\n{inner}{indent}}}\n"
            )
        if kind == "loop":
            counter = self._fresh("i")
            bound = self._rng.randint(1, 4)
            inner = self._block(fields, depth + 1, min_lock, indent + "  ")
            return (
                f"{indent}var {counter} = 0;\n"
                f"{indent}while ({counter} < {bound}) {{\n"
                f"{inner}"
                f"{indent}  {counter} = {counter} + 1;\n"
                f"{indent}}}\n"
            )
        if kind == "branch":
            then_block = self._block(fields, depth + 1, min_lock, indent + "  ")
            else_block = self._block(fields, depth + 1, min_lock, indent + "  ")
            return (
                f"{indent}if (acc % 2 == 0) {{\n{then_block}{indent}}} "
                f"else {{\n{else_block}{indent}}}\n"
            )
        # Fallback (e.g. sync with no locks left in the order).
        return f"{indent}acc = acc + 1;\n"


def generate_program(seed: int, **kwargs) -> str:
    """Generate one random MJ program (see :class:`ProgramFuzzer`)."""
    return ProgramFuzzer(seed, **kwargs).generate()
