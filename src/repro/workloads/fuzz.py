"""A seeded random MJ program generator for differential stress testing.

Generates small multithreaded programs with a controlled shape:

* one shared data class with several fields, several lock objects;
* 2–3 worker threads whose bodies mix plain field accesses, accesses
  under randomly chosen sync blocks, bounded loops, branches, local
  arithmetic, and thread-local allocations;
* ``main`` initializes everything, starts the workers, joins them, and
  reads the shared state afterwards.

Structural guarantees, so every generated program is usable in
property tests:

* **termination** — all loops are counter-bounded, there is no
  recursion;
* **deadlock freedom** — nested sync blocks always acquire locks in
  ascending lock-index order (a global lock order);
* **determinism** — no input, no time; a given (program seed, schedule
  seed) pair fully determines the execution.

With ``sync_vocab=True`` the generator additionally emits condition
synchronization in two deadlock-free shapes:

* **flag handshakes** — a setter worker runs ``sync (lockK) { s.gH =
  1; notifyall lockK; }`` and a waiter runs the guarded-wait idiom on
  the same dedicated flag field.  Every setter publishes its flags
  *before* executing any blocking statement of its own, so every
  guarded wait terminates (the guard re-check absorbs lost notifies);
* **cyclic barriers** — ``barrier lock0, n_workers;`` between the
  top-level phases of *every* worker, the same count per worker, never
  under a held monitor, so every generation trips.

``handoff_bias=True`` (implies ``sync_vocab``) additionally threads a
dedicated ``Token`` object through each handshake: the setter writes
``token.v`` unlocked right before the notify, the waiter makes its
first ``token.v`` access right after the wait, and the setter re-reads
``token.v`` at the end of its body.  Because nothing else touches the
token, its ownership travels exclusively along condition edges —
the first-access-handoff shape that makes the deferral-miss classes
(and the §7.2 ownership-timing territory) reachable by fuzzing.

All new random draws are gated behind ``sync_vocab`` so programs
generated without it are byte-identical to those of older revisions.

The generator is used by ``tests/property/test_fuzz.py`` to check, on
hundreds of programs: interpreter robustness, loop-peeling semantics
preservation, schedule determinism, and the Definition 1 reporting
guarantee against the FullRace oracle on live event streams.
"""

from __future__ import annotations

import random


class ProgramFuzzer:
    """Generates one random MJ program per seed."""

    def __init__(
        self,
        seed: int,
        n_workers: int = 2,
        n_fields: int = 3,
        n_locks: int = 2,
        max_stmts: int = 6,
        max_depth: int = 2,
        sync_vocab: bool = False,
        handoff_bias: bool = False,
    ):
        self._rng = random.Random(seed)
        self.n_workers = min(max(n_workers, 1), 4)
        self.n_fields = min(max(n_fields, 1), 5)
        self.n_locks = min(max(n_locks, 1), 4)
        self.max_stmts = max_stmts
        self.max_depth = max_depth
        self.handoff_bias = bool(handoff_bias)
        self.sync_vocab = bool(sync_vocab) or self.handoff_bias
        self._temp = 0
        self._handshakes: list = []
        self._n_barriers = 0

    # ------------------------------------------------------------------

    def generate(self) -> str:
        fields = [f"f{i}" for i in range(self.n_fields)]
        self._plan_sync(fields)
        parts = [self._main(), self._shared(fields), "class LockObj { }"]
        for worker in range(self.n_workers):
            parts.append(self._worker(worker, fields))
        parts.append("class Pad { field v; }")
        if self.handoff_bias:
            parts.append("class Token { field v; }")
        return "\n\n".join(parts)

    # ------------------------------------------------------------------

    def _plan_sync(self, fields) -> None:
        """Draw the program-wide condition-sync skeleton.

        Handshakes get dedicated flag fields (``g0``, ``g1``, ...) no
        other statement touches, so a flag set once stays set and every
        guarded wait is guaranteed to terminate.  The barrier count is
        global: every worker crosses the same barriers in the same
        order, or none would trip.
        """
        self._handshakes = []
        self._n_barriers = 0
        if not self.sync_vocab:
            return
        if self.n_workers >= 2:
            for index in range(self._rng.randint(1, 2)):
                setter = self._rng.randrange(self.n_workers)
                waiter = self._rng.choice(
                    [w for w in range(self.n_workers) if w != setter]
                )
                self._handshakes.append(
                    {
                        "flag": f"g{index}",
                        "token": f"t{index}",
                        "setter": setter,
                        "waiter": waiter,
                        "lock": self._rng.randrange(self.n_locks),
                    }
                )
        self._n_barriers = self._rng.randint(0, 2)

    def _main(self) -> str:
        lines = ["    var shared = new Shared();"]
        for i in range(self.n_fields):
            lines.append(f"    shared.f{i} = {self._rng.randint(0, 9)};")
        for handshake in self._handshakes:
            lines.append(f"    shared.{handshake['flag']} = 0;")
        if self.handoff_bias:
            for handshake in self._handshakes:
                lines.append(
                    f"    shared.{handshake['token']} = new Token();"
                )
        for i in range(self.n_locks):
            lines.append(f"    var lock{i} = new LockObj();")
        lock_args = ", ".join(f"lock{i}" for i in range(self.n_locks))
        for w in range(self.n_workers):
            lines.append(f"    var w{w} = new Worker{w}(shared, {lock_args});")
        for w in range(self.n_workers):
            lines.append(f"    start w{w};")
        for w in range(self.n_workers):
            lines.append(f"    join w{w};")
        for i in range(self.n_fields):
            lines.append(f"    print shared.f{i};")
        body = "\n".join(lines)
        return f"class Main {{\n  static def main() {{\n{body}\n  }}\n}}"

    def _shared(self, fields) -> str:
        names = list(fields) + [h["flag"] for h in self._handshakes]
        if self.handoff_bias:
            names += [h["token"] for h in self._handshakes]
        decls = "\n".join(f"  field {f};" for f in names)
        return f"class Shared {{\n{decls}\n}}"

    def _handshake_set(self, handshake, indent: str) -> str:
        lock, flag = handshake["lock"], handshake["flag"]
        lines = ""
        if self.handoff_bias:
            # Unlocked write right before the publish: the last owner
            # access the condition edge hands off.
            lines += f"{indent}s.{handshake['token']}.v = acc + 1;\n"
        lines += (
            f"{indent}sync (this.lock{lock}) {{\n"
            f"{indent}  s.{flag} = 1;\n"
            f"{indent}  notifyall this.lock{lock};\n"
            f"{indent}}}\n"
        )
        return lines

    def _handshake_wait(self, handshake, indent: str) -> str:
        lock, flag = handshake["lock"], handshake["flag"]
        lines = (
            f"{indent}sync (this.lock{lock}) {{\n"
            f"{indent}  while (s.{flag} != 1) {{\n"
            f"{indent}    wait this.lock{lock};\n"
            f"{indent}  }}\n"
            f"{indent}}}\n"
        )
        if self.handoff_bias:
            # Unlocked first access right after the wait returns.
            lines += (
                f"{indent}s.{handshake['token']}.v = "
                f"s.{handshake['token']}.v + 1;\n"
            )
        return lines

    def _worker(self, index: int, fields) -> str:
        lock_fields = "\n".join(
            f"  field lock{i};" for i in range(self.n_locks)
        )
        lock_params = ", ".join(f"l{i}" for i in range(self.n_locks))
        lock_inits = "\n".join(
            f"    this.lock{i} = l{i};" for i in range(self.n_locks)
        )
        self._temp = 0
        body = self._worker_body(index, fields)
        return (
            f"class Worker{index} {{\n"
            f"  field s;\n{lock_fields}\n"
            f"  def init(shared, {lock_params}) {{\n"
            f"    this.s = shared;\n{lock_inits}\n  }}\n"
            f"  def run() {{\n"
            f"    var s = this.s;\n"
            f"    var acc = 0;\n"
            f"{body}"
            f"  }}\n}}"
        )

    def _worker_body(self, index: int, fields) -> str:
        """The run() body: handshake publishes first, then fuzzed
        phases separated by global barriers, with guarded waits at the
        head of a random phase.

        Ordering is the deadlock-freedom argument: a worker publishes
        every flag it owns before it can block on a wait or a barrier,
        so all flags are eventually set, all waits return, and every
        worker reaches every barrier.
        """
        if not self.sync_vocab:
            return self._block(fields, depth=0, min_lock=0, indent="    ")
        sets = [
            self._handshake_set(handshake, "    ")
            for handshake in self._handshakes
            if handshake["setter"] == index
        ]
        waits = [
            self._handshake_wait(handshake, "    ")
            for handshake in self._handshakes
            if handshake["waiter"] == index
        ]
        phases = [
            self._block(fields, depth=0, min_lock=0, indent="    ")
            for _ in range(self._n_barriers + 1)
        ]
        for wait in waits:
            slot = self._rng.randrange(len(phases))
            phases[slot] = wait + phases[slot]
        trailer = ""
        if self.handoff_bias:
            # The setter re-reads its token after everything else: when
            # the waiter's post-wait write is condition-ordered between
            # the setter's unlocked write and this read, the ownership
            # handoff chain closes and the deferral-miss shapes appear.
            trailer = "".join(
                f"    var d{handshake['flag'][1:]} = "
                f"s.{handshake['token']}.v;\n"
                for handshake in self._handshakes
                if handshake["setter"] == index
            )
        barrier = f"    barrier this.lock0, {self.n_workers};\n"
        return "".join(sets) + barrier.join(phases) + trailer

    # ------------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._temp += 1
        return f"{prefix}{self._temp}"

    def _block(self, fields, depth: int, min_lock: int, indent: str) -> str:
        lines = []
        for _ in range(self._rng.randint(1, self.max_stmts)):
            lines.append(self._stmt(fields, depth, min_lock, indent))
        return "".join(lines)

    def _stmt(self, fields, depth: int, min_lock: int, indent: str) -> str:
        choices = ["read", "write", "rmw", "local", "pad"]
        if depth < self.max_depth:
            choices += ["sync", "loop", "branch"]
        kind = self._rng.choice(choices)
        field = self._rng.choice(fields)

        if kind == "read":
            temp = self._fresh("r")
            return f"{indent}var {temp} = s.{field};\n"
        if kind == "write":
            return f"{indent}s.{field} = acc + {self._rng.randint(0, 9)};\n"
        if kind == "rmw":
            return f"{indent}s.{field} = s.{field} + 1;\n"
        if kind == "local":
            return f"{indent}acc = acc * 2 + {self._rng.randint(0, 5)};\n"
        if kind == "pad":
            temp = self._fresh("p")
            return (
                f"{indent}var {temp} = new Pad();\n"
                f"{indent}{temp}.v = acc;\n"
                f"{indent}acc = acc + {temp}.v;\n"
            )
        if kind == "sync" and min_lock < self.n_locks:
            lock = self._rng.randint(min_lock, self.n_locks - 1)
            inner = self._block(fields, depth + 1, lock + 1, indent + "  ")
            return (
                f"{indent}sync (this.lock{lock}) {{\n{inner}{indent}}}\n"
            )
        if kind == "loop":
            counter = self._fresh("i")
            bound = self._rng.randint(1, 4)
            inner = self._block(fields, depth + 1, min_lock, indent + "  ")
            return (
                f"{indent}var {counter} = 0;\n"
                f"{indent}while ({counter} < {bound}) {{\n"
                f"{inner}"
                f"{indent}  {counter} = {counter} + 1;\n"
                f"{indent}}}\n"
            )
        if kind == "branch":
            then_block = self._block(fields, depth + 1, min_lock, indent + "  ")
            else_block = self._block(fields, depth + 1, min_lock, indent + "  ")
            return (
                f"{indent}if (acc % 2 == 0) {{\n{then_block}{indent}}} "
                f"else {{\n{else_block}{indent}}}\n"
            )
        # Fallback (e.g. sync with no locks left in the order).
        return f"{indent}acc = acc + 1;\n"


def generate_program(seed: int, **kwargs) -> str:
    """Generate one random MJ program (see :class:`ProgramFuzzer`)."""
    return ProgramFuzzer(seed, **kwargs).generate()
