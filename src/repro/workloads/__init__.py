"""MJ workload programs: analogs of the paper's Table 1 benchmarks plus
the figure kernels, each with a documented race inventory."""

from . import elevator2, figure2, figure3, fuzz, hedc2, join_stats, mtrt2, philosophers, sor2, tsp2
from .base import WorkloadSpec

#: The Table 1/3 benchmark suite, in the paper's order.
BENCHMARKS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        mtrt2.SPEC,
        tsp2.SPEC,
        sor2.SPEC,
        elevator2.SPEC,
        hedc2.SPEC,
    )
}

#: The CPU-bound subset measured in Table 2 (the paper excludes the
#: interactive elevator and hedc).
TABLE2_BENCHMARKS: dict[str, WorkloadSpec] = {
    name: spec for name, spec in BENCHMARKS.items() if spec.cpu_bound
}

#: Everything, including the paper-figure kernels.
ALL_WORKLOADS: dict[str, WorkloadSpec] = {
    **BENCHMARKS,
    figure2.SPEC.name: figure2.SPEC,
    figure2.SPEC_SHARED_LOCK.name: figure2.SPEC_SHARED_LOCK,
    figure3.SPEC.name: figure3.SPEC,
    join_stats.SPEC.name: join_stats.SPEC,
    philosophers.SPEC.name: philosophers.SPEC,
    philosophers.SPEC_ORDERED.name: philosophers.SPEC_ORDERED,
}

__all__ = [
    "ALL_WORKLOADS",
    "BENCHMARKS",
    "TABLE2_BENCHMARKS",
    "WorkloadSpec",
    "elevator2",
    "figure2",
    "figure3",
    "fuzz",
    "hedc2",
    "join_stats",
    "mtrt2",
    "philosophers",
    "sor2",
    "tsp2",
]
