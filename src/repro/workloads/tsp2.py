"""``tsp2`` — a traveling-salesman solver analog of the ETH tsp benchmark.

Structure mirrored from the paper's account:

* ``main`` builds a read-only distance matrix (one array per city — a
  flood of spurious reports under ``NoOwnership``, since every row is
  initialized by main and read by the workers);
* two worker threads pop start cities from a lock-protected work queue
  and run a *recursive* branch-and-bound tour search — the deep call
  chains and re-read fields are exactly what makes the runtime cache
  vital (tsp is the paper's NoCache catastrophe: 42% → 3722%);
* **the serious race**: ``Solver.minTourLen`` is read without a lock in
  the pruning test (``if (length >= solver.minTourLen) return``) and
  written under ``sync(solver)`` — precisely the tsp bug the paper
  reports as able to corrupt output;
* **feasible-but-benign races**: both workers scan a shared pool of
  ``Candidate`` tours and improve them *without* locking, relying on
  higher-level phase structure — the paper's ``TourElement`` reports
  ("cannot in fact happen due to higher-level synchronization") —
  reported by design, as the paper's detector does;
* **granularity traps**: ``CityInfo`` objects mix immutable coordinate
  fields (read lock-free) with a mutable ``visits`` counter (updated
  under ``statsLock``) — race-free per field, spuriously racy when
  fields are merged (Table 3: tsp 5 → 20 under FieldsMerged).

Expected under Full: 5 racy objects (solver + 4 candidates), matching
the paper's tsp row.
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 8) -> str:
    """``scale`` = number of cities; search depth is capped for runtime."""
    n = max(4, scale)
    depth = min(n, 5)
    return f"""
// tsp2: traveling salesman branch-and-bound (ETH tsp analog).
class Main {{
  static def main() {{
    var solver = new Solver({n}, {depth});
    var queue = new WorkQueue();
    var i = 0;
    while (i < {n}) {{
      queue.push(new StartCity(i));
      i = i + 1;
    }}
    var w1 = new TspWorker(solver, queue);
    var w2 = new TspWorker(solver, queue);
    start w1;
    start w2;
    join w1;
    join w2;
    print "min=" + solver.minTourLen;
  }}
}}

class Solver {{
  field n;
  field maxDepth;
  field minTourLen;      // RACE: unsynchronized pruning reads.
  field dist;            // Array of per-city distance rows (read-only).
  field pw;              // Powers of two for the visited bitmask.
  field candidates;      // Shared Candidate pool (feasible races).
  field cities;          // CityInfo pool (FieldsMerged trap).
  field statsLock;
  def init(n, maxDepth) {{
    this.n = n;
    this.maxDepth = maxDepth;
    this.minTourLen = 1000000;
    this.statsLock = new LockObj();
    var dist = newarray(n);
    var i = 0;
    while (i < n) {{
      var row = newarray(n);
      var j = 0;
      while (j < n) {{
        row[j] = 1 + ((i * 7 + j * 13) % 17);
        j = j + 1;
      }}
      dist[i] = row;
      i = i + 1;
    }}
    this.dist = dist;
    var pw = newarray(n + 1);
    var p = 1;
    var k = 0;
    while (k < n + 1) {{
      pw[k] = p;
      p = p * 2;
      k = k + 1;
    }}
    this.pw = pw;
    var cands = newarray(4);
    var c = 0;
    while (c < 4) {{
      cands[c] = new Candidate(900000 + c);
      c = c + 1;
    }}
    this.candidates = cands;
    var cities = newarray(n);
    var m = 0;
    while (m < n) {{
      cities[m] = new CityInfo(m * 3, m * 5);
      m = m + 1;
    }}
    this.cities = cities;
  }}
}}

class LockObj {{ }}

class Candidate {{
  field length;          // Feasible race: lock-free improvement writes.
  def init(length) {{
    this.length = length;
  }}
}}

class CityInfo {{
  field x;               // Immutable coordinates, read lock-free.
  field y;
  field visits;          // Mutable counter, guarded by statsLock.
  def init(x, y) {{
    this.x = x;
    this.y = y;
    this.visits = 0;
  }}
}}

class StartCity {{
  field city;
  def init(city) {{
    this.city = city;
  }}
}}

// A per-node scratch record.  It never escapes the search call, so the
// static escape analysis prunes every access below; without the static
// phase (NoStatic) each of them is instrumented.
class Probe {{
  field city;
  field len;
  field score;
  def init(city, len) {{
    this.city = city;
    this.len = len;
    this.score = 0;
  }}
  def bump(delta) {{
    this.score = this.score + delta;
    return this.score;
  }}
}}

class QueueNode {{
  field item;            // Immutable payload, read outside the lock.
  field next;            // Mutable link, guarded by the queue monitor.
}}

class WorkQueue {{
  field head;
  def push(item) {{
    var node = new QueueNode();
    node.item = item;
    sync (this) {{
      node.next = this.head;
      this.head = node;
    }}
  }}
  def pop() {{
    var node = null;
    sync (this) {{
      node = this.head;
      if (node != null) {{
        this.head = node.next;
      }}
    }}
    if (node == null) {{
      return null;
    }}
    return node.item;    // Lock-free payload read (granularity trap).
  }}
}}

class TspWorker {{
  field solver;
  field queue;
  field localBest;       // Thread-specific accumulator.
  def init(solver, queue) {{
    this.solver = solver;
    this.queue = queue;
    this.localBest = 1000000;
  }}
  def search(city, length, visited, depth) {{
    var solver = this.solver;
    if (length >= solver.minTourLen) {{       // RACE: lock-free read.
      return 0;
    }}
    if (depth >= solver.maxDepth) {{
      if (length < this.localBest) {{
        this.localBest = length;
      }}
      sync (solver) {{
        if (length < solver.minTourLen) {{
          solver.minTourLen = length;         // Guarded write.
        }}
      }}
      return 1;
    }}
    var dist = solver.dist;
    var row = dist[city];
    var pw = solver.pw;
    var n = solver.n;
    var probe = new Probe(city, length);
    var next = 0;
    var count = 0;
    while (next < n) {{
      if ((visited / pw[next]) % 2 == 0) {{
        probe.bump(row[next]);
        count = count + search(
            next, length + row[next], visited + pw[next], depth + 1);
      }}
      next = next + 1;
    }}
    if (probe.score < 0) {{
      return 0;
    }}
    return count;
  }}
  def improveCandidates() {{
    var solver = this.solver;
    var cands = solver.candidates;
    var i = 0;
    while (i < 4) {{
      var cand = cands[i];
      if (this.localBest < cand.length) {{    // Feasible race: read...
        cand.length = this.localBest;         // ...and write, lock-free.
      }}
      i = i + 1;
    }}
  }}
  def scanCities() {{
    var solver = this.solver;
    var cities = solver.cities;
    var lock = solver.statsLock;
    var n = solver.n;
    var i = 0;
    var spread = 0;
    while (i < n) {{
      var info = cities[i];
      spread = spread + info.x + info.y;      // Lock-free immutable reads.
      sync (lock) {{
        info.visits = info.visits + 1;        // Guarded counter update.
      }}
      i = i + 1;
    }}
    return spread;
  }}
  def run() {{
    var solver = this.solver;
    var queue = this.queue;
    var pw = solver.pw;
    var going = true;
    while (going) {{
      var task = queue.pop();
      if (task == null) {{
        going = false;
      }} else {{
        var city = task.city;
        search(city, 0, pw[city], 1);
      }}
    }}
    improveCandidates();
    scanCities();
  }}
}}
"""


SPEC = WorkloadSpec(
    name="tsp2",
    description="Traveling salesman branch-and-bound (ETH tsp analog)",
    source=source,
    default_scale=8,
    threads=3,
    cpu_bound=True,
    expected_full_objects=5,
    paper_table3=(5, 20, 241),
    expected_racy_fields=frozenset({"minTourLen", "length"}),
)
