"""``hedc2`` — a web-crawler/metasearch kernel (ETH hedc analog).

hedc is the paper's showcase for precision (Section 8.3): among
hundreds of object-race-detection reports, their detector finds 5 racy
objects, all true unsynchronized accesses, including a bug previous
work had misclassified as benign.  This workload reproduces that race
inventory:

* **the pool-size race** — worker threads decrement ``TaskPool.size``
  without the pool lock ("the size of a thread pool is read and written
  without appropriate locking");
* **the ``Task.thread_`` race** — a completing worker stores ``null``
  into ``task.thread_`` with no lock while the canceller thread reads
  it under the task's monitor: the NullPointerException-if-cancelled
  bug the paper highlights as "nearly impossible to find during normal
  testing" (4 tasks → 4 racy objects, + the pool = 5);
* **granularity traps** for Table 3's FieldsMerged column:
  ``MetaSearchRequest`` objects mix an immutable ``query`` (read
  lock-free by workers) with a ``done`` flag the canceller sets under a
  lock — race-free per field, spurious when merged (5 → 10).

Eight dynamic threads as in Table 1: main, six workers, one canceller.
Interactive in the original, so accuracy numbers only.
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 4) -> str:
    """``scale`` = number of tasks (the paper's inventory wants 4)."""
    ntasks = max(2, scale)
    nrequests = 5
    return f"""
// hedc2: metasearch task-pool kernel (ETH hedc analog).
class Main {{
  static def main() {{
    var pool = new TaskPool();
    var doneLock = new LockObj();
    var requests = newarray({nrequests});
    var r = 0;
    while (r < {nrequests}) {{
      requests[r] = new MetaSearchRequest(r * 11);
      r = r + 1;
    }}
    var tasks = newarray({ntasks});
    var i = 0;
    while (i < {ntasks}) {{
      var task = new Task(i, requests);
      tasks[i] = task;
      pool.submit(task);
      i = i + 1;
    }}
    var w1 = new CrawlWorker(pool);
    var w2 = new CrawlWorker(pool);
    var w3 = new CrawlWorker(pool);
    var w4 = new CrawlWorker(pool);
    var w5 = new CrawlWorker(pool);
    var w6 = new CrawlWorker(pool);
    var canceller = new Canceller(tasks, {ntasks}, requests, doneLock, {nrequests});
    start w1;
    start w2;
    start w3;
    start w4;
    start w5;
    start w6;
    start canceller;
    join w1;
    join w2;
    join w3;
    join w4;
    join w5;
    join w6;
    join canceller;
    print "remaining=" + pool.size;
  }}
}}

class LockObj {{ }}

class MetaSearchRequest {{
  field query;        // Immutable after construction; read lock-free.
  field done;         // Mutable; guarded by doneLock (canceller only).
  def init(query) {{
    this.query = query;
    this.done = false;
  }}
}}

class Task {{
  field id;
  field requests;
  field thread_;      // RACE: lock-free null-ing vs locked cancel read.
  field result;
  def init(id, requests) {{
    this.id = id;
    this.requests = requests;
    this.thread_ = null;
    this.result = 0;
  }}
}}

class Node {{
  field item;
  field next;
}}

class TaskPool {{
  field head;
  field size;         // RACE: decremented without the pool lock.
  field submitted;
  def init() {{
    this.head = null;
    this.size = 0;
    this.submitted = 0;
  }}
  def submit(task) {{
    var node = new Node();
    node.item = task;
    sync (this) {{
      node.next = this.head;
      this.head = node;
      this.size = this.size + 1;
      this.submitted = this.submitted + 1;
    }}
  }}
  def take() {{
    var node = null;
    sync (this) {{
      node = this.head;
      if (node != null) {{
        this.head = node.next;
      }}
    }}
    if (node == null) {{
      return null;
    }}
    return node.item;
  }}
}}

class CrawlWorker {{
  field pool;
  field fetched;      // Thread-specific accumulator.
  def init(pool) {{
    this.pool = pool;
    this.fetched = 0;
  }}
  def fetch(task) {{
    // Simulated page fetch: thread-local accumulation over the task's
    // request list (queries are immutable, read without locks).
    var requests = task.requests;
    var sum = 0;
    var i = 0;
    while (i < requests.length) {{
      var request = requests[i];
      sum = sum + request.query;
      i = i + 1;
    }}
    this.fetched = this.fetched + 1;
    return sum;
  }}
  def run() {{
    var pool = this.pool;
    var working = true;
    while (working) {{
      var task = pool.take();
      if (task == null) {{
        working = false;
      }} else {{
        task.thread_ = this;          // Claim: lock-free write.
        task.result = fetch(task);
        task.thread_ = null;          // RACE: completion vs cancel.
        pool.size = pool.size - 1;    // RACE: lock-free decrement.
      }}
    }}
  }}
}}

class Canceller {{
  field tasks;
  field ntasks;
  field requests;
  field doneLock;
  field nrequests;
  def init(tasks, ntasks, requests, doneLock, nrequests) {{
    this.tasks = tasks;
    this.ntasks = ntasks;
    this.requests = requests;
    this.doneLock = doneLock;
    this.nrequests = nrequests;
  }}
  def run() {{
    // Sweep every task and cancel whatever still has a live thread.
    // The task monitor guards the read, but the workers' completion
    // write holds no lock — the Task.thread_ datarace.
    var tasks = this.tasks;
    var t = 0;
    while (t < this.ntasks) {{
      var task = tasks[t];
      sync (task) {{
        var owner = task.thread_;
        if (owner != null) {{
          task.result = 0 - 1;        // "Cancelled" marker.
        }}
      }}
      t = t + 1;
    }}
    // Mark every request done (guarded), while workers read the
    // immutable query field lock-free: per-field race-free, spurious
    // under object-granularity merging.
    var lock = this.doneLock;
    var requests = this.requests;
    var i = 0;
    while (i < this.nrequests) {{
      var request = requests[i];
      sync (lock) {{
        request.done = true;
      }}
      i = i + 1;
    }}
  }}
}}
"""


SPEC = WorkloadSpec(
    name="hedc2",
    description="Metasearch task-pool kernel (ETH hedc analog)",
    source=source,
    default_scale=4,
    threads=8,
    cpu_bound=False,
    expected_full_objects=5,
    paper_table3=(5, 10, 29),
    expected_racy_fields=frozenset({"thread_", "size"}),
)
