"""``philosophers`` — the dining-philosophers deadlock workload.

Exercises the Section 10 deadlock-detection extension.  Two variants:

* **naive** (``ordered=False``): every philosopher takes the left fork
  then the right — the classic circular lock-order with a feasible
  deadlock.  Under most schedules the simulation *completes anyway*
  (quanta are long enough for a philosopher to grab both forks), which
  is exactly the interesting case: the dynamic lock-order analysis
  reports the potential cycle from a successful run, and the static
  analysis reports it without running at all;
* **ordered** (``ordered=True``): the standard fix — philosophers take
  the lower-numbered fork first — and both analyses stay silent.

No dataraces either way: the eating counters are per-philosopher and
the forks are only ever used as monitors.
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 3, ordered: bool = False) -> str:
    """``scale`` = number of philosophers (>= 2); meals fixed at 2."""
    n = max(2, scale)
    meals = 2
    if ordered:
        pick = """
    var first = this.left;
    var second = this.right;
    if (this.rightIndex < this.leftIndex) {
      first = this.right;
      second = this.left;
    }"""
    else:
        pick = """
    var first = this.left;
    var second = this.right;"""

    setup = []
    for i in range(n):
        setup.append(f"    var p{i} = new Philosopher("
                     f"forks[{i}], forks[{(i + 1) % n}], {i}, {(i + 1) % n});")
    starts = "\n".join(f"    start p{i};" for i in range(n))
    joins = "\n".join(f"    join p{i};" for i in range(n))
    meals_sum = " + ".join(f"p{i}.meals" for i in range(n))

    return f"""
// Dining philosophers ({'ordered forks' if ordered else 'naive'}).
class Main {{
  static def main() {{
    var forks = newarray({n});
    var i = 0;
    while (i < {n}) {{
      forks[i] = new Fork();
      i = i + 1;
    }}
{chr(10).join(setup)}
{starts}
{joins}
    print "meals=" + ({meals_sum});
  }}
}}

class Fork {{ }}

class Philosopher {{
  field left;
  field right;
  field leftIndex;
  field rightIndex;
  field meals;
  def init(left, right, leftIndex, rightIndex) {{
    this.left = left;
    this.right = right;
    this.leftIndex = leftIndex;
    this.rightIndex = rightIndex;
    this.meals = 0;
  }}
  def dine() {{{pick}
    sync (first) {{
      sync (second) {{
        this.meals = this.meals + 1;
      }}
    }}
  }}
  def run() {{
    var round = 0;
    while (round < {meals}) {{
      dine();
      round = round + 1;
    }}
  }}
}}
"""


SPEC = WorkloadSpec(
    name="philosophers",
    description="Dining philosophers (naive fork order: feasible deadlock)",
    source=lambda scale: source(scale, ordered=False),
    default_scale=3,
    threads=4,
    cpu_bound=False,
    expected_full_objects=0,
    expected_racy_fields=frozenset(),
)

SPEC_ORDERED = WorkloadSpec(
    name="philosophers-ordered",
    description="Dining philosophers with a global fork order (deadlock-free)",
    source=lambda scale: source(scale, ordered=True),
    default_scale=3,
    threads=4,
    cpu_bound=False,
    expected_full_objects=0,
    expected_racy_fields=frozenset(),
)
