"""The paper's Figure 2 example program, in MJ.

Three threads: ``main`` writes ``x.f`` (statement T01) before starting
``T1`` and ``T2``.  ``T1`` runs synchronized method ``foo`` — a write
``a.f`` (T11) and, inside ``sync(p)``, ``b.g = b.f`` (T14).  ``T2``
runs ``bar``, writing ``d.f`` (T21) inside ``sync(q)``.

Two aliasing scenarios from Sections 2.1–2.2:

* **Scenario A** (``shared_lock=False``): ``a``, ``b``, ``d``, ``x``
  alias one object; the locks ``this``/``p``/``q`` are all distinct.
  T11 and T14 race with T21; T01 does not race (start ordering, which
  the ownership model captures).
* **Scenario B** (``shared_lock=True``): ``p`` and ``q`` alias one
  lock.  Whichever thread locks first creates a happened-before edge
  that hides the T11↔T21 race from happens-before detectors, yet the
  race is *feasible* — the opposite acquisition order exhibits it.
  The paper's lockset-based detector reports it in both scenarios.
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 0, shared_lock: bool = False) -> str:
    q_init = "t2.q = p;" if shared_lock else "t2.q = new Lock();"
    return f"""
// Figure 2 of Choi et al., PLDI 2002 (MJ rendition).
class Main {{
  static def main() {{
    var x = new Data();
    var p = new Lock();
    x.f = 100;                      // T01: before any start -> owned.
    var t1 = new ChildOne();
    t1.a = x;
    t1.b = x;
    t1.p = p;
    var t2 = new ChildTwo();
    t2.d = x;
    {q_init}
    start t1;                       // T04
    start t2;                       // T05
    join t1;
    join t2;
  }}
}}

class Data {{
  field f;
  field g;
}}

class Lock {{ }}

class ChildOne {{
  field a;
  field b;
  field p;
  sync def foo() {{
    var a = this.a;
    a.f = 50;                       // T11
    var p = this.p;
    sync (p) {{                     // T13
      var b = this.b;
      b.g = b.f;                    // T14
    }}
  }}
  def run() {{
    foo();
  }}
}}

class ChildTwo {{
  field d;
  field q;
  def bar() {{
    sync (this.q) {{                // T20
      var d = this.d;
      d.f = 10;                     // T21
    }}
  }}
  def run() {{
    bar();
  }}
}}
"""


SPEC = WorkloadSpec(
    name="figure2",
    description="The paper's running example (Figure 2), scenario A",
    source=lambda scale: source(scale, shared_lock=False),
    default_scale=0,
    threads=3,
    cpu_bound=False,
    expected_full_objects=1,  # The single Data object (field f).
    expected_racy_fields=frozenset({"f"}),
)

SPEC_SHARED_LOCK = WorkloadSpec(
    name="figure2-shared-lock",
    description="Figure 2, scenario B: p and q alias (Section 2.2)",
    source=lambda scale: source(scale, shared_lock=True),
    default_scale=0,
    threads=3,
    cpu_bound=False,
    expected_full_objects=1,
    expected_racy_fields=frozenset({"f"}),
)
