"""``join_stats`` — the Section 8.3 join/pseudo-lock kernel, standalone.

The mtrt idiom distilled: two child threads update shared statistics
holding a common lock ``syncObject``; after joining both children, the
parent reads the statistics with **no** lock.  With the paper's join
modeling the three locksets are

    child 1:  {S1, syncObject}
    child 2:  {S2, syncObject}
    parent:   {S1, S2}

which are *mutually intersecting* although they share **no single
common lock**.  The paper's detector therefore reports nothing, while
Eraser's single-common-lock discipline produces its known spurious
report.  ``examples/eraser_comparison.py`` and the integration tests
drive this program through both detectors.
"""

from __future__ import annotations

from .base import WorkloadSpec


def source(scale: int = 50) -> str:
    return f"""
// The mtrt I/O-statistics idiom (Section 8.3).
class Main {{
  static def main() {{
    var stats = new Stats();
    var syncObject = new LockObj();
    var c1 = new Child(stats, syncObject, {scale});
    var c2 = new Child(stats, syncObject, {scale});
    start c1;
    start c2;
    join c1;
    join c2;
    // Lock-free post-join reads: safe thanks to the join ordering.
    print "count=" + stats.count;
    print "total=" + stats.total;
  }}
}}

class LockObj {{ }}

class Stats {{
  field count;
  field total;
  def init() {{
    this.count = 0;
    this.total = 0;
  }}
}}

class Child {{
  field stats;
  field lock;
  field work;
  def init(stats, lock, work) {{
    this.stats = stats;
    this.lock = lock;
    this.work = work;
  }}
  def run() {{
    var i = 0;
    while (i < this.work) {{
      var local = i % 7;
      // Periodic statistics updates under the common lock, as mtrt's
      // render threads do.
      sync (this.lock) {{
        var s = this.stats;
        s.count = s.count + 1;
        s.total = s.total + local;
      }}
      i = i + 1;
    }}
  }}
}}
"""


SPEC = WorkloadSpec(
    name="join_stats",
    description="Post-join lock-free statistics reads (Section 8.3 idiom)",
    source=source,
    default_scale=50,
    threads=3,
    cpu_bound=False,
    expected_full_objects=0,
    expected_racy_fields=frozenset(),
)
