"""repro — a full reproduction of Choi, O'Callahan, Lee, Loginov,
Sridharan & Sarkar, *Efficient and Precise Datarace Detection for
Multithreaded Object-Oriented Programs* (PLDI 2002).

The package implements the paper's complete four-phase architecture
(Figure 1) over **MJ**, a small Java-like object-oriented language
whose deterministic interpreter plays the role of the instrumented JVM:

* :mod:`repro.lang` — the MJ front end (lexer, parser, resolver);
* :mod:`repro.runtime` — heap, monitors, threads under a seeded
  deterministic scheduler, and the access/synchronization event stream;
* :mod:`repro.analysis` — static datarace analysis (Section 5):
  points-to, ICG, MustSync/MustThread, single-instance must points-to,
  escape + thread-specific analysis, plus the compiler infrastructure
  (CFG, dominators, SSA, value numbering);
* :mod:`repro.instrument` — compile-time optimization (Section 6):
  static weaker-than elimination and loop peeling;
* :mod:`repro.detector` — the runtime (Sections 3, 4, 7): weaker-than
  relation, lockset tries, per-thread access caches, ownership model,
  join pseudo-locks;
* :mod:`repro.baselines` — Eraser, object-granularity, and
  happens-before detectors for the paper's comparisons;
* :mod:`repro.workloads` / :mod:`repro.harness` — Table 1 benchmark
  analogs and the runners that regenerate Tables 2 and 3.

Quickstart::

    from repro import check_source

    reports = check_source('''
        class Main {
          static def main() {
            var d = new Data();
            var a = new Worker(d); var b = new Worker(d);
            start a; start b; join a; join b;
          }
        }
        class Data { field x; }
        class Worker {
          field d;
          def init(d) { this.d = d; }
          def run() { this.d.x = this.d.x + 1; }
        }
    ''')
    for report in reports:
        print(report.describe())
"""

from .detector import DetectorConfig, RaceDetector, RaceReport
from .harness import Configuration, RunOutcome, run_workload
from .instrument import InstrumentationPlan, PlannerConfig, plan_instrumentation
from .lang import compile_source
from .runtime import RandomPolicy, RoundRobinPolicy, run_program

__version__ = "1.0.0"


def check_source(
    source: str,
    planner_config=None,
    detector_config=None,
    seed=None,
) -> list:
    """One-call race check: compile, optimize, execute, detect.

    Returns the list of :class:`~repro.detector.report.RaceReport`.
    ``seed=None`` uses the deterministic round-robin scheduler; an
    integer seed selects a random interleaving.
    """
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, planner_config)
    detector = RaceDetector(
        config=detector_config,
        resolved=resolved,
        static_races=plan.static_races,
    )
    policy = RandomPolicy(seed) if seed is not None else RoundRobinPolicy()
    run_program(resolved, sink=detector, trace_sites=plan.trace_sites, policy=policy)
    return detector.reports.reports


__all__ = [
    "Configuration",
    "DetectorConfig",
    "InstrumentationPlan",
    "PlannerConfig",
    "RaceDetector",
    "RaceReport",
    "RunOutcome",
    "check_source",
    "compile_source",
    "plan_instrumentation",
    "run_program",
    "run_workload",
    "__version__",
]
