"""Unparser: renders MJ ASTs back to (canonical) source text.

Used by the test suite to check program transformations such as loop
peeling (Section 6.3), and by examples to show users what the optimized
program looks like.  The output is valid MJ that re-parses to an
equivalent tree.
"""

from __future__ import annotations

from . import ast

_INDENT = "  "


def render_program(program: ast.Program) -> str:
    return "\n\n".join(render_class(c) for c in program.classes) + "\n"


def render_class(class_decl: ast.ClassDecl) -> str:
    header = f"class {class_decl.name}"
    if class_decl.superclass is not None:
        header += f" extends {class_decl.superclass}"
    lines = [header + " {"]
    for field_decl in class_decl.fields:
        prefix = "static " if field_decl.is_static else ""
        lines.append(f"{_INDENT}{prefix}field {field_decl.name};")
    for method in class_decl.methods:
        lines.append(_render_method(method))
    lines.append("}")
    return "\n".join(lines)


def _render_method(method: ast.MethodDecl) -> str:
    prefix = ""
    if method.is_static:
        prefix += "static "
    params = ", ".join(method.params)
    header = f"{_INDENT}{prefix}def {method.name}({params}) "
    return header + _render_block(method.body, depth=1)


def _render_block(block: ast.Block, depth: int) -> str:
    pad = _INDENT * (depth + 1)
    lines = ["{"]
    for stmt in block.body:
        lines.append(pad + render_stmt(stmt, depth + 1))
    lines.append(_INDENT * depth + "}")
    return "\n".join(lines)


def render_stmt(stmt: ast.Stmt, depth: int = 0) -> str:
    """Render a single statement (nested blocks included)."""
    if isinstance(stmt, ast.VarDecl):
        return f"var {stmt.name} = {render_expr(stmt.init)};"
    if isinstance(stmt, ast.AssignLocal):
        return f"{stmt.name} = {render_expr(stmt.value)};"
    if isinstance(stmt, ast.FieldWrite):
        return (
            f"{render_expr(stmt.obj)}.{stmt.field_name} = "
            f"{render_expr(stmt.value)};"
        )
    if isinstance(stmt, ast.StaticFieldWrite):
        return f"{stmt.class_name}.{stmt.field_name} = {render_expr(stmt.value)};"
    if isinstance(stmt, ast.ArrayWrite):
        return (
            f"{render_expr(stmt.array)}[{render_expr(stmt.index)}] = "
            f"{render_expr(stmt.value)};"
        )
    if isinstance(stmt, ast.If):
        text = f"if ({render_expr(stmt.cond)}) " + _render_block(
            stmt.then_block, depth
        )
        if stmt.else_block is not None:
            text += " else " + _render_block(stmt.else_block, depth)
        return text
    if isinstance(stmt, ast.While):
        return f"while ({render_expr(stmt.cond)}) " + _render_block(stmt.body, depth)
    if isinstance(stmt, ast.Sync):
        return f"sync ({render_expr(stmt.lock)}) " + _render_block(stmt.body, depth)
    if isinstance(stmt, ast.Start):
        return f"start {render_expr(stmt.thread)};"
    if isinstance(stmt, ast.Join):
        return f"join {render_expr(stmt.thread)};"
    if isinstance(stmt, ast.Wait):
        return f"wait {render_expr(stmt.target)};"
    if isinstance(stmt, ast.Notify):
        keyword = "notifyall" if stmt.notify_all else "notify"
        return f"{keyword} {render_expr(stmt.target)};"
    if isinstance(stmt, ast.Barrier):
        return f"barrier {render_expr(stmt.target)}, {render_expr(stmt.parties)};"
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return "return;"
        return f"return {render_expr(stmt.value)};"
    if isinstance(stmt, ast.Print):
        return f"print {render_expr(stmt.value)};"
    if isinstance(stmt, ast.Assert):
        return f"assert {render_expr(stmt.cond)};"
    if isinstance(stmt, ast.ExprStmt):
        return f"{render_expr(stmt.expr)};"
    if isinstance(stmt, ast.Block):
        return _render_block(stmt, depth)
    raise TypeError(f"unhandled statement {type(stmt).__name__}")


def render_expr(expr: ast.Expr) -> str:
    """Render an expression (fully parenthesizing binary subterms)."""
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.StringLiteral):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    if isinstance(expr, ast.NullLiteral):
        return "null"
    if isinstance(expr, ast.ThisRef):
        return "this"
    if isinstance(expr, ast.ClassRef):
        return expr.class_name
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.Binary):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, ast.Unary):
        return f"{expr.op}{render_expr(expr.operand)}"
    if isinstance(expr, ast.FieldRead):
        return f"{render_expr(expr.obj)}.{expr.field_name}"
    if isinstance(expr, ast.StaticFieldRead):
        return f"{expr.class_name}.{expr.field_name}"
    if isinstance(expr, ast.ArrayRead):
        return f"{render_expr(expr.array)}[{render_expr(expr.index)}]"
    if isinstance(expr, ast.New):
        args = ", ".join(render_expr(a) for a in expr.args)
        return f"new {expr.class_name}({args})"
    if isinstance(expr, ast.NewArray):
        return f"newarray({render_expr(expr.size)})"
    if isinstance(expr, ast.Call):
        args = ", ".join(render_expr(a) for a in expr.args)
        if expr.is_static:
            return f"{expr.static_class}.{expr.method_name}({args})"
        if expr.receiver is None:
            return f"{expr.method_name}({args})"
        return f"{render_expr(expr.receiver)}.{expr.method_name}({args})"
    raise TypeError(f"unhandled expression {type(expr).__name__}")
