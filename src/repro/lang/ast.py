"""Abstract syntax tree for the MJ language.

MJ is a small dynamically-typed object-oriented language with Java-style
monitors and threads, designed as the substrate for reproducing the PLDI
2002 datarace-detection paper.  It supports:

* classes with (optionally static) fields and methods, single inheritance;
* ``sync`` methods and ``sync (expr) { ... }`` blocks (Java ``synchronized``);
* ``start e;`` / ``join e;`` thread operations (a class with a ``run``
  method acts like ``java.lang.Thread``);
* field, static-field, and array-element accesses — the *access sites*
  that the instrumentation phases reason about.

Every node carries a :class:`~repro.lang.errors.SourceLocation`.  The
resolver (:mod:`repro.lang.resolver`) assigns:

* a unique ``site_id`` to every memory-access node (the paper's *trace
  points*, Section 6.1), and
* a unique ``stmt_id`` to every statement (the nodes of the statement-level
  CFG used by the static analyses).

Access nodes also carry ``origin_site_id``: program transformations such
as loop peeling clone access sites, and the clone points back at the site
it was derived from so that facts computed before the transformation (the
static datarace set, Section 5) transfer to the clone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional

from .errors import SourceLocation


class AccessKind(enum.Enum):
    """Whether an access site reads or writes memory (``e.a`` in the paper)."""

    READ = "READ"
    WRITE = "WRITE"


class Node:
    """Base class for all AST nodes."""

    location: SourceLocation

    def children(self) -> Iterator["Node"]:
        """Yield the direct child nodes, in source order."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions.


class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLiteral(Expr):
    value: int
    location: SourceLocation


@dataclass
class BoolLiteral(Expr):
    value: bool
    location: SourceLocation


@dataclass
class StringLiteral(Expr):
    value: str
    location: SourceLocation


@dataclass
class NullLiteral(Expr):
    location: SourceLocation


@dataclass
class VarRef(Expr):
    """A reference to a local variable or parameter."""

    name: str
    location: SourceLocation


@dataclass
class ThisRef(Expr):
    location: SourceLocation


@dataclass
class ClassRef(Expr):
    """A reference to a class object (synthesized by the resolver).

    Each class has a singleton runtime *class object* that holds its
    static fields and serves as the lock for ``static sync`` methods —
    mirroring Java's per-class ``Class`` instance.
    """

    class_name: str
    location: SourceLocation


@dataclass
class Binary(Expr):
    """A binary operation; ``op`` is the operator's source spelling."""

    op: str
    left: Expr
    right: Expr
    location: SourceLocation

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class Unary(Expr):
    op: str
    operand: Expr
    location: SourceLocation

    def children(self) -> Iterator[Node]:
        yield self.operand


class AccessExpr(Expr):
    """Base class for expressions that read a memory location.

    These are the read-side *trace points*.  ``site_id`` is assigned by
    the resolver; ``origin_site_id`` links clones to their source site.
    """

    site_id: Optional[int]
    origin_site_id: Optional[int]

    @property
    def access_kind(self) -> AccessKind:
        return AccessKind.READ


@dataclass
class FieldRead(AccessExpr):
    """``obj.field`` — reads an instance field."""

    obj: Expr
    field_name: str
    location: SourceLocation
    site_id: Optional[int] = None
    origin_site_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.obj


@dataclass
class StaticFieldRead(AccessExpr):
    """``Class.field`` — reads a static field."""

    class_name: str
    field_name: str
    location: SourceLocation
    site_id: Optional[int] = None
    origin_site_id: Optional[int] = None


@dataclass
class ArrayRead(AccessExpr):
    """``arr[index]`` — reads an array element."""

    array: Expr
    index: Expr
    location: SourceLocation
    site_id: Optional[int] = None
    origin_site_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.array
        yield self.index


@dataclass
class New(Expr):
    """``new Class(args)`` — allocates an object and runs ``init``.

    ``alloc_id`` is assigned by the resolver and identifies the allocation
    site for the points-to analysis (one abstract object per site,
    Section 5.3).
    """

    class_name: str
    args: list[Expr]
    location: SourceLocation
    alloc_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield from self.args


@dataclass
class NewArray(Expr):
    """``newarray(size)`` — allocates an array of nulls."""

    size: Expr
    location: SourceLocation
    alloc_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.size


@dataclass
class Call(Expr):
    """A method call.

    ``receiver`` is ``None`` for bare calls (``m(...)``) which the
    resolver binds to either an implicit-``this`` call or a static call
    on the enclosing class.  When the parser sees ``Name.m(...)`` it
    produces ``receiver=VarRef("Name")``; the resolver rewrites it into a
    static call (setting ``static_class``) if ``Name`` names a class.
    """

    receiver: Optional[Expr]
    method_name: str
    args: list[Expr]
    location: SourceLocation
    static_class: Optional[str] = None
    call_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        if self.receiver is not None:
            yield self.receiver
        yield from self.args

    @property
    def is_static(self) -> bool:
        return self.static_class is not None


# ---------------------------------------------------------------------------
# Statements.


class Stmt(Node):
    """Base class for statements; ``stmt_id`` is assigned by the resolver."""

    stmt_id: Optional[int]


@dataclass
class Block(Stmt):
    body: list[Stmt]
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield from self.body


@dataclass
class VarDecl(Stmt):
    """``var name = init;``"""

    name: str
    init: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.init


@dataclass
class AssignLocal(Stmt):
    """``name = value;`` where ``name`` is a local or parameter."""

    name: str
    value: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.value


class AccessStmt(Stmt):
    """Base class for statements that write a memory location."""

    site_id: Optional[int]
    origin_site_id: Optional[int]

    @property
    def access_kind(self) -> AccessKind:
        return AccessKind.WRITE


@dataclass
class FieldWrite(AccessStmt):
    """``obj.field = value;``"""

    obj: Expr
    field_name: str
    value: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None
    site_id: Optional[int] = None
    origin_site_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.obj
        yield self.value


@dataclass
class StaticFieldWrite(AccessStmt):
    """``Class.field = value;``"""

    class_name: str
    field_name: str
    value: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None
    site_id: Optional[int] = None
    origin_site_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.value


@dataclass
class ArrayWrite(AccessStmt):
    """``arr[index] = value;``"""

    array: Expr
    index: Expr
    value: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None
    site_id: Optional[int] = None
    origin_site_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.array
        yield self.index
        yield self.value


@dataclass
class If(Stmt):
    cond: Expr
    then_block: Block
    else_block: Optional[Block]
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then_block
        if self.else_block is not None:
            yield self.else_block


@dataclass
class While(Stmt):
    cond: Expr
    body: Block
    location: SourceLocation
    stmt_id: Optional[int] = None
    #: Set by the loop-peeling transformation on the residual loop so the
    #: same loop is not peeled twice.
    peeled: bool = False

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class Sync(Stmt):
    """``sync (lock) { ... }`` — a Java ``synchronized`` block.

    ``sync_id`` uniquely identifies the block; it doubles as the ICG node
    for the block in the static analysis (Section 5.2 gives synchronized
    blocks their own ICG nodes).
    """

    lock: Expr
    body: Block
    location: SourceLocation
    stmt_id: Optional[int] = None
    sync_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.lock
        yield self.body


@dataclass
class Start(Stmt):
    """``start e;`` — starts the thread object denoted by ``e``."""

    thread: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.thread


@dataclass
class Join(Stmt):
    """``join e;`` — blocks until the thread denoted by ``e`` terminates."""

    thread: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.thread


@dataclass
class Wait(Stmt):
    """``wait e;`` — releases the monitor of ``e`` and suspends the thread
    until another thread notifies that monitor.

    The executing thread must hold the monitor of ``e``, and it must be
    the innermost monitor it currently holds (so the release/re-acquire
    keeps lock nesting LIFO).  All reentrancy levels are released while
    waiting and restored on wakeup.
    """

    target: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.target


@dataclass
class Notify(Stmt):
    """``notify e;`` / ``notifyall e;`` — wakes waiter(s) on ``e``'s monitor.

    The executing thread must hold the monitor of ``e``.  A notify with an
    empty wait set is a no-op (the notification is lost, as in Java).
    """

    target: Expr
    notify_all: bool
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.target


@dataclass
class Barrier(Stmt):
    """``barrier e, n;`` — cyclic barrier: block until ``n`` threads arrive.

    ``e`` denotes the barrier object (any reference), ``n`` the party
    count.  The party count is fixed by the first arrival of each
    generation; a later arrival in the same generation with a different
    count is a runtime error.  No monitor needs to be held.
    """

    target: Expr
    parties: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.parties


@dataclass
class Return(Stmt):
    value: Optional[Expr]
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class Print(Stmt):
    value: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.value


@dataclass
class Assert(Stmt):
    cond: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.cond


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects (a call)."""

    expr: Expr
    location: SourceLocation
    stmt_id: Optional[int] = None

    def children(self) -> Iterator[Node]:
        yield self.expr


# ---------------------------------------------------------------------------
# Declarations.


@dataclass
class FieldDecl(Node):
    name: str
    is_static: bool
    location: SourceLocation


@dataclass
class MethodDecl(Node):
    """A method declaration.

    ``is_sync`` marks Java's ``synchronized`` methods — the resolver
    normalizes them by wrapping the body in ``sync (this) { ... }``
    (or a sync on the class object for static methods), so downstream
    phases only ever see explicit sync blocks.
    """

    name: str
    params: list[str]
    body: Block
    is_sync: bool
    is_static: bool
    location: SourceLocation
    class_name: Optional[str] = None

    def children(self) -> Iterator[Node]:
        yield self.body

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"


@dataclass
class ClassDecl(Node):
    name: str
    superclass: Optional[str]
    fields: list[FieldDecl]
    methods: list[MethodDecl]
    location: SourceLocation

    def children(self) -> Iterator[Node]:
        yield from self.fields
        yield from self.methods


@dataclass
class Program(Node):
    """A whole MJ program: a set of classes, one of which must be ``Main``
    with a ``static def main()`` entry point."""

    classes: list[ClassDecl]
    location: SourceLocation

    def children(self) -> Iterator[Node]:
        yield from self.classes


#: Union of the node classes that constitute memory-access sites.
ACCESS_NODE_TYPES = (
    FieldRead,
    StaticFieldRead,
    ArrayRead,
    FieldWrite,
    StaticFieldWrite,
    ArrayWrite,
)


def access_sites(root: Node) -> Iterator[Node]:
    """Yield every memory-access node under ``root``, preorder."""
    for node in root.walk():
        if isinstance(node, ACCESS_NODE_TYPES):
            yield node
