"""Diagnostic machinery for the MJ language front end.

All front-end failures (lexing, parsing, resolution) raise subclasses of
:class:`MJError` carrying a :class:`SourceLocation` so that tools built on
top of the front end can point users at the offending source text, exactly
as the paper's detector reports the *source location* component ``s`` of
each access event (Section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourceLocation:
    """A position in an MJ source file.

    ``line`` and ``column`` are 1-based.  ``filename`` defaults to the
    conventional ``<input>`` for programs built from strings.
    """

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


#: Location used for synthesized nodes (e.g. statements produced by the
#: loop-peeling transformation) that have no direct source counterpart.
SYNTHETIC = SourceLocation(line=0, column=0, filename="<synthetic>")


class MJError(Exception):
    """Base class for all MJ front-end errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(MJError):
    """An invalid character sequence was encountered while tokenizing."""


class ParseError(MJError):
    """The token stream does not conform to the MJ grammar."""


class ResolveError(MJError):
    """A name, class, field, or method reference could not be resolved."""


class MJRuntimeError(MJError):
    """An error raised while interpreting an MJ program.

    Examples: null dereference, out-of-bounds array access, calling a
    missing method, joining a thread that was never started.  These are
    the MJ analogues of Java's runtime exceptions; the paper notes that
    potentially-excepting instructions (PEIs) are pervasive in Java and
    constrain the compile-time optimizations (Section 6.3).
    """


class MJAssertionError(MJRuntimeError):
    """An ``assert`` statement in an MJ program evaluated to false."""
