"""Recursive-descent parser for the MJ language.

Grammar (EBNF):

.. code-block:: text

    program     := classdecl* EOF
    classdecl   := "class" IDENT ("extends" IDENT)? "{" member* "}"
    member      := "static"? "field" IDENT ";"
                 | "static"? "sync"? "def" IDENT "(" params? ")" block
    params      := IDENT ("," IDENT)*
    block       := "{" stmt* "}"
    stmt        := "var" IDENT "=" expr ";"
                 | "if" "(" expr ")" block ("else" (block | ifstmt))?
                 | "while" "(" expr ")" block
                 | "sync" "(" expr ")" block
                 | "start" expr ";"
                 | "join" expr ";"
                 | "wait" expr ";"
                 | "notify" expr ";"
                 | "notifyall" expr ";"
                 | "barrier" expr "," expr ";"
                 | "return" expr? ";"
                 | "print" expr ";"
                 | "assert" expr ";"
                 | expr ("=" expr)? ";"     -- assignment or call
    expr        := or
    or          := and ("||" and)*
    and         := equality ("&&" equality)*
    equality    := relational (("==" | "!=") relational)*
    relational  := additive (("<" | "<=" | ">" | ">=") additive)*
    additive    := term (("+" | "-") term)*
    term        := unary (("*" | "/" | "%") unary)*
    unary       := ("!" | "-") unary | postfix
    postfix     := primary ("." IDENT ("(" args? ")")? | "[" expr "]")*
    primary     := INT | STRING | "true" | "false" | "null" | "this"
                 | "new" IDENT "(" args? ")" | "newarray" "(" expr ")"
                 | IDENT ("(" args? ")")? | "(" expr ")"
    args        := expr ("," expr)*

Assignments are parsed by first parsing an expression and then, if an
``=`` follows, reinterpreting the expression as an l-value (a local
variable, field read, or array read).  The distinction between instance
and static member accesses (``obj.f`` vs ``Class.f``) is left to the
resolver, which knows the set of class names.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers.

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _check(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _match(self, kind: TokenKind) -> Token | None:
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, context: str) -> Token:
        if self._check(kind):
            return self._advance()
        actual = self._peek()
        raise ParseError(
            f"expected {kind.value!r} {context}, found {actual.text!r}",
            actual.location,
        )

    # ------------------------------------------------------------------
    # Declarations.

    def parse_program(self) -> ast.Program:
        start = self._peek().location
        classes = []
        while not self._check(TokenKind.EOF):
            classes.append(self._parse_class())
        return ast.Program(classes=classes, location=start)

    def _parse_class(self) -> ast.ClassDecl:
        keyword = self._expect(TokenKind.CLASS, "to begin a class declaration")
        name = self._expect(TokenKind.IDENT, "after 'class'").text
        superclass = None
        if self._match(TokenKind.EXTENDS):
            superclass = self._expect(TokenKind.IDENT, "after 'extends'").text
        self._expect(TokenKind.LBRACE, "to open the class body")
        fields: list[ast.FieldDecl] = []
        methods: list[ast.MethodDecl] = []
        while not self._check(TokenKind.RBRACE):
            member = self._parse_member()
            if isinstance(member, ast.FieldDecl):
                fields.append(member)
            else:
                methods.append(member)
        self._expect(TokenKind.RBRACE, "to close the class body")
        return ast.ClassDecl(
            name=name,
            superclass=superclass,
            fields=fields,
            methods=methods,
            location=keyword.location,
        )

    def _parse_member(self) -> ast.FieldDecl | ast.MethodDecl:
        start = self._peek().location
        is_static = self._match(TokenKind.STATIC) is not None
        if self._match(TokenKind.FIELD):
            name = self._expect(TokenKind.IDENT, "after 'field'").text
            self._expect(TokenKind.SEMI, "after field declaration")
            return ast.FieldDecl(name=name, is_static=is_static, location=start)
        is_sync = self._match(TokenKind.SYNC) is not None
        self._expect(TokenKind.DEF, "to begin a method declaration")
        name = self._expect(TokenKind.IDENT, "after 'def'").text
        self._expect(TokenKind.LPAREN, "after the method name")
        params: list[str] = []
        if not self._check(TokenKind.RPAREN):
            params.append(self._expect(TokenKind.IDENT, "as a parameter name").text)
            while self._match(TokenKind.COMMA):
                params.append(
                    self._expect(TokenKind.IDENT, "as a parameter name").text
                )
        self._expect(TokenKind.RPAREN, "to close the parameter list")
        body = self._parse_block()
        return ast.MethodDecl(
            name=name,
            params=params,
            body=body,
            is_sync=is_sync,
            is_static=is_static,
            location=start,
        )

    # ------------------------------------------------------------------
    # Statements.

    def _parse_block(self) -> ast.Block:
        open_brace = self._expect(TokenKind.LBRACE, "to open a block")
        body = []
        while not self._check(TokenKind.RBRACE):
            body.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE, "to close the block")
        return ast.Block(body=body, location=open_brace.location)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind is TokenKind.VAR:
            return self._parse_var_decl()
        if token.kind is TokenKind.IF:
            return self._parse_if()
        if token.kind is TokenKind.WHILE:
            return self._parse_while()
        if token.kind is TokenKind.SYNC:
            return self._parse_sync()
        if token.kind is TokenKind.START:
            self._advance()
            thread = self._parse_expr()
            self._expect(TokenKind.SEMI, "after 'start' statement")
            return ast.Start(thread=thread, location=token.location)
        if token.kind is TokenKind.JOIN:
            self._advance()
            thread = self._parse_expr()
            self._expect(TokenKind.SEMI, "after 'join' statement")
            return ast.Join(thread=thread, location=token.location)
        if token.kind is TokenKind.WAIT:
            self._advance()
            target = self._parse_expr()
            self._expect(TokenKind.SEMI, "after 'wait' statement")
            return ast.Wait(target=target, location=token.location)
        if token.kind in (TokenKind.NOTIFY, TokenKind.NOTIFYALL):
            self._advance()
            target = self._parse_expr()
            keyword = "notifyall" if token.kind is TokenKind.NOTIFYALL else "notify"
            self._expect(TokenKind.SEMI, f"after '{keyword}' statement")
            return ast.Notify(
                target=target,
                notify_all=token.kind is TokenKind.NOTIFYALL,
                location=token.location,
            )
        if token.kind is TokenKind.BARRIER:
            self._advance()
            target = self._parse_expr()
            self._expect(TokenKind.COMMA, "after the barrier expression")
            parties = self._parse_expr()
            self._expect(TokenKind.SEMI, "after 'barrier' statement")
            return ast.Barrier(
                target=target, parties=parties, location=token.location
            )
        if token.kind is TokenKind.RETURN:
            self._advance()
            value = None
            if not self._check(TokenKind.SEMI):
                value = self._parse_expr()
            self._expect(TokenKind.SEMI, "after 'return' statement")
            return ast.Return(value=value, location=token.location)
        if token.kind is TokenKind.PRINT:
            self._advance()
            value = self._parse_expr()
            self._expect(TokenKind.SEMI, "after 'print' statement")
            return ast.Print(value=value, location=token.location)
        if token.kind is TokenKind.ASSERT:
            self._advance()
            cond = self._parse_expr()
            self._expect(TokenKind.SEMI, "after 'assert' statement")
            return ast.Assert(cond=cond, location=token.location)
        return self._parse_assignment_or_call()

    def _parse_var_decl(self) -> ast.Stmt:
        keyword = self._advance()
        name = self._expect(TokenKind.IDENT, "after 'var'").text
        self._expect(TokenKind.ASSIGN, "after the variable name")
        init = self._parse_expr()
        self._expect(TokenKind.SEMI, "after variable declaration")
        return ast.VarDecl(name=name, init=init, location=keyword.location)

    def _parse_if(self) -> ast.Stmt:
        keyword = self._advance()
        self._expect(TokenKind.LPAREN, "after 'if'")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "after the if condition")
        then_block = self._parse_block()
        else_block = None
        if self._match(TokenKind.ELSE):
            if self._check(TokenKind.IF):
                nested = self._parse_if()
                else_block = ast.Block(body=[nested], location=nested.location)
            else:
                else_block = self._parse_block()
        return ast.If(
            cond=cond,
            then_block=then_block,
            else_block=else_block,
            location=keyword.location,
        )

    def _parse_while(self) -> ast.Stmt:
        keyword = self._advance()
        self._expect(TokenKind.LPAREN, "after 'while'")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "after the while condition")
        body = self._parse_block()
        return ast.While(cond=cond, body=body, location=keyword.location)

    def _parse_sync(self) -> ast.Stmt:
        keyword = self._advance()
        self._expect(TokenKind.LPAREN, "after 'sync'")
        lock = self._parse_expr()
        self._expect(TokenKind.RPAREN, "after the sync lock expression")
        body = self._parse_block()
        return ast.Sync(lock=lock, body=body, location=keyword.location)

    def _parse_assignment_or_call(self) -> ast.Stmt:
        start = self._peek().location
        target = self._parse_expr()
        if self._match(TokenKind.ASSIGN):
            value = self._parse_expr()
            self._expect(TokenKind.SEMI, "after assignment")
            return self._make_assignment(target, value, start)
        self._expect(TokenKind.SEMI, "after expression statement")
        if not isinstance(target, ast.Call):
            raise ParseError(
                "only calls may be used as expression statements", start
            )
        return ast.ExprStmt(expr=target, location=start)

    def _make_assignment(
        self, target: ast.Expr, value: ast.Expr, location
    ) -> ast.Stmt:
        """Reinterpret a parsed expression as the l-value of an assignment."""
        if isinstance(target, ast.VarRef):
            return ast.AssignLocal(name=target.name, value=value, location=location)
        if isinstance(target, ast.FieldRead):
            return ast.FieldWrite(
                obj=target.obj,
                field_name=target.field_name,
                value=value,
                location=location,
            )
        if isinstance(target, ast.ArrayRead):
            return ast.ArrayWrite(
                array=target.array,
                index=target.index,
                value=value,
                location=location,
            )
        raise ParseError("invalid assignment target", location)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing).

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_binary_level(self, kinds, next_level) -> ast.Expr:
        left = next_level()
        while self._peek().kind in kinds:
            op = self._advance()
            right = next_level()
            left = ast.Binary(
                op=op.text, left=left, right=right, location=op.location
            )
        return left

    def _parse_or(self) -> ast.Expr:
        return self._parse_binary_level({TokenKind.OR}, self._parse_and)

    def _parse_and(self) -> ast.Expr:
        return self._parse_binary_level({TokenKind.AND}, self._parse_equality)

    def _parse_equality(self) -> ast.Expr:
        return self._parse_binary_level(
            {TokenKind.EQ, TokenKind.NE}, self._parse_relational
        )

    def _parse_relational(self) -> ast.Expr:
        return self._parse_binary_level(
            {TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE},
            self._parse_additive,
        )

    def _parse_additive(self) -> ast.Expr:
        return self._parse_binary_level(
            {TokenKind.PLUS, TokenKind.MINUS}, self._parse_term
        )

    def _parse_term(self) -> ast.Expr:
        return self._parse_binary_level(
            {TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT},
            self._parse_unary,
        )

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in (TokenKind.NOT, TokenKind.MINUS):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.text, operand=operand, location=token.location)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check(TokenKind.DOT):
                dot = self._advance()
                name = self._expect(TokenKind.IDENT, "after '.'").text
                if self._match(TokenKind.LPAREN):
                    args = self._parse_args()
                    expr = ast.Call(
                        receiver=expr,
                        method_name=name,
                        args=args,
                        location=dot.location,
                    )
                else:
                    expr = ast.FieldRead(
                        obj=expr, field_name=name, location=dot.location
                    )
            elif self._check(TokenKind.LBRACKET):
                bracket = self._advance()
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET, "after array index")
                expr = ast.ArrayRead(
                    array=expr, index=index, location=bracket.location
                )
            else:
                return expr

    def _parse_args(self) -> list[ast.Expr]:
        """Parse call arguments; the '(' has already been consumed."""
        args: list[ast.Expr] = []
        if not self._check(TokenKind.RPAREN):
            args.append(self._parse_expr())
            while self._match(TokenKind.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenKind.RPAREN, "to close the argument list")
        return args

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLiteral(value=token.value, location=token.location)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLiteral(value=token.value, location=token.location)
        if token.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLiteral(value=True, location=token.location)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLiteral(value=False, location=token.location)
        if token.kind is TokenKind.NULL:
            self._advance()
            return ast.NullLiteral(location=token.location)
        if token.kind is TokenKind.THIS:
            self._advance()
            return ast.ThisRef(location=token.location)
        if token.kind is TokenKind.NEW:
            self._advance()
            name = self._expect(TokenKind.IDENT, "after 'new'").text
            self._expect(TokenKind.LPAREN, "after the class name")
            args = self._parse_args()
            return ast.New(class_name=name, args=args, location=token.location)
        if token.kind is TokenKind.NEWARRAY:
            self._advance()
            self._expect(TokenKind.LPAREN, "after 'newarray'")
            size = self._parse_expr()
            self._expect(TokenKind.RPAREN, "after the array size")
            return ast.NewArray(size=size, location=token.location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._match(TokenKind.LPAREN):
                args = self._parse_args()
                return ast.Call(
                    receiver=None,
                    method_name=token.text,
                    args=args,
                    location=token.location,
                )
            return ast.VarRef(name=token.text, location=token.location)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN, "to close parenthesized expression")
            return expr
        raise ParseError(
            f"unexpected token {token.text!r} in expression", token.location
        )


def parse(source: str, filename: str = "<input>") -> ast.Program:
    """Parse MJ source text into an unresolved :class:`Program`."""
    return Parser(tokenize(source, filename)).parse_program()
