"""The MJ language front end: lexer, parser, AST, resolver, printer.

MJ is the small Java-like object-oriented language this reproduction
uses in place of Java bytecode.  The typical entry point is
:func:`compile_source`, which parses and resolves a program in one call:

.. code-block:: python

    from repro.lang import compile_source

    resolved = compile_source('''
        class Main {
          static def main() {
            var p = new Point();
            p.x = 3;
          }
        }
        class Point { field x; }
    ''')
"""

from . import ast
from .errors import (
    LexError,
    MJAssertionError,
    MJError,
    MJRuntimeError,
    ParseError,
    ResolveError,
    SourceLocation,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .printer import render_expr, render_program, render_stmt
from .resolver import (
    ARRAY_FIELD,
    ClassInfo,
    IdAllocator,
    ResolvedProgram,
    Resolver,
    SiteInfo,
    compile_source,
    resolve,
)

__all__ = [
    "ARRAY_FIELD",
    "ClassInfo",
    "IdAllocator",
    "LexError",
    "Lexer",
    "MJAssertionError",
    "MJError",
    "MJRuntimeError",
    "ParseError",
    "Parser",
    "ResolveError",
    "ResolvedProgram",
    "Resolver",
    "SiteInfo",
    "SourceLocation",
    "ast",
    "compile_source",
    "parse",
    "render_expr",
    "render_program",
    "render_stmt",
    "resolve",
    "tokenize",
]
