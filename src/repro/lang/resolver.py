"""Name resolution and semantic analysis for MJ programs.

The resolver performs the front end's semantic phase:

* builds the class table (single inheritance, cycle detection, member
  duplication checks);
* normalizes ``sync`` methods into explicit ``sync (this) { ... }`` (or
  ``sync (ClassRef) { ... }`` for static methods) so downstream phases
  see only sync *blocks*, matching the paper's treatment of synchronized
  methods and blocks as a single construct (Section 5.2);
* rewrites ``Name.member`` accesses into static accesses when ``Name``
  is a class, and binds bare calls to implicit-``this`` or static calls;
* checks local-variable scoping (MJ requires explicit ``this.f`` for
  instance fields, so every bare identifier is a local, a parameter, or
  a class name);
* assigns the identifiers used by every later phase: ``site_id`` for
  memory accesses (trace points), ``stmt_id`` for statements (CFG
  nodes), ``alloc_id`` for allocation sites (points-to abstract
  objects), ``sync_id`` for sync blocks (ICG nodes), ``call_id`` for
  call sites (call-graph edges).

The result is a :class:`ResolvedProgram`, the unit every analysis,
transformation, and the interpreter operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import ast
from .errors import ResolveError, SourceLocation

#: The pseudo-field name used for array-element accesses.  The paper
#: associates a single memory location with all elements of an array
#: (Section 2.1, footnote 1); the pseudo-field keeps array accesses
#: uniform with field accesses throughout the pipeline.
ARRAY_FIELD = "[]"


class IdAllocator:
    """Allocates the unique identifiers used across the pipeline.

    Program transformations (loop peeling) run after resolution and
    clone access sites; they draw fresh ids from the same allocator so
    ids remain unique program-wide.
    """

    def __init__(self) -> None:
        self._next_site = 0
        self._next_stmt = 0
        self._next_alloc = 0
        self._next_sync = 0
        self._next_call = 0

    def site_id(self) -> int:
        self._next_site += 1
        return self._next_site

    def stmt_id(self) -> int:
        self._next_stmt += 1
        return self._next_stmt

    def alloc_id(self) -> int:
        self._next_alloc += 1
        return self._next_alloc

    def sync_id(self) -> int:
        self._next_sync += 1
        return self._next_sync

    def call_id(self) -> int:
        self._next_call += 1
        return self._next_call


@dataclass
class ClassInfo:
    """Resolved information about one class."""

    decl: ast.ClassDecl
    superclass: Optional["ClassInfo"] = None
    own_instance_fields: dict[str, ast.FieldDecl] = field(default_factory=dict)
    own_static_fields: dict[str, ast.FieldDecl] = field(default_factory=dict)
    own_methods: dict[str, ast.MethodDecl] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.decl.name

    def ancestors(self):
        """Yield this class and its superclasses, most-derived first."""
        info: Optional[ClassInfo] = self
        while info is not None:
            yield info
            info = info.superclass

    def resolve_method(self, name: str) -> Optional[ast.MethodDecl]:
        """Find ``name`` in this class or an ancestor (dynamic dispatch)."""
        for info in self.ancestors():
            method = info.own_methods.get(name)
            if method is not None:
                return method
        return None

    def instance_fields(self) -> dict[str, ast.FieldDecl]:
        """All instance fields, including inherited ones."""
        fields: dict[str, ast.FieldDecl] = {}
        for info in reversed(list(self.ancestors())):
            fields.update(info.own_instance_fields)
        return fields

    def static_field_owner(self, name: str) -> Optional["ClassInfo"]:
        """The class in the ancestor chain declaring static field ``name``."""
        for info in self.ancestors():
            if name in info.own_static_fields:
                return info
        return None

    @property
    def is_thread_class(self) -> bool:
        """A class is startable iff it (or an ancestor) defines ``run``."""
        return self.resolve_method("run") is not None


@dataclass
class SiteInfo:
    """Metadata about one memory-access site (a trace point)."""

    site_id: int
    node: ast.Node
    method: ast.MethodDecl
    access_kind: ast.AccessKind
    field_name: str
    location: SourceLocation

    @property
    def descriptor(self) -> str:
        verb = "write" if self.access_kind is ast.AccessKind.WRITE else "read"
        return f"{verb} of .{self.field_name} in {self.method.qualified_name} at {self.location}"


@dataclass
class ResolvedProgram:
    """An MJ program after semantic analysis — the pipeline's currency."""

    program: ast.Program
    classes: dict[str, ClassInfo]
    sites: dict[int, SiteInfo]
    methods: list[ast.MethodDecl]
    main_method: ast.MethodDecl
    id_allocator: IdAllocator
    source: Optional[str] = None

    def class_info(self, name: str) -> ClassInfo:
        info = self.classes.get(name)
        if info is None:
            raise ResolveError(f"unknown class {name!r}")
        return info

    def method_of_site(self, site_id: int) -> ast.MethodDecl:
        return self.sites[site_id].method

    def all_site_ids(self) -> set[int]:
        return set(self.sites)

    def register_cloned_site(self, node: ast.Node, template: SiteInfo) -> int:
        """Register a cloned access node, allocating it a fresh site id.

        Used by program transformations.  The clone's ``origin_site_id``
        is set to the *root* origin of ``template`` so static facts
        computed before any transformation still apply.
        """
        site_id = self.id_allocator.site_id()
        node.site_id = site_id
        origin = template.node.origin_site_id
        node.origin_site_id = origin if origin is not None else template.site_id
        self.sites[site_id] = SiteInfo(
            site_id=site_id,
            node=node,
            method=template.method,
            access_kind=template.access_kind,
            field_name=template.field_name,
            location=template.location,
        )
        return site_id

    def origin_of(self, site_id: int) -> int:
        """The original (pre-transformation) site id for ``site_id``."""
        node = self.sites[site_id].node
        return node.origin_site_id if node.origin_site_id is not None else site_id


class Resolver:
    """Performs semantic analysis; see the module docstring."""

    def __init__(self, program: ast.Program, source: Optional[str] = None):
        self._program = program
        self._source = source
        self._classes: dict[str, ClassInfo] = {}
        self._sites: dict[int, SiteInfo] = {}
        self._methods: list[ast.MethodDecl] = []
        self._ids = IdAllocator()
        # Per-method resolution state.
        self._current_class: Optional[ClassInfo] = None
        self._current_method: Optional[ast.MethodDecl] = None
        self._scopes: list[set[str]] = []

    # ------------------------------------------------------------------
    # Entry point.

    def resolve(self) -> ResolvedProgram:
        self._build_class_table()
        self._normalize_sync_methods()
        for class_decl in self._program.classes:
            self._current_class = self._classes[class_decl.name]
            for method in class_decl.methods:
                self._resolve_method(method)
        main_method = self._find_main()
        return ResolvedProgram(
            program=self._program,
            classes=self._classes,
            sites=self._sites,
            methods=self._methods,
            main_method=main_method,
            id_allocator=self._ids,
            source=self._source,
        )

    # ------------------------------------------------------------------
    # Class table construction.

    def _build_class_table(self) -> None:
        for class_decl in self._program.classes:
            if class_decl.name in self._classes:
                raise ResolveError(
                    f"duplicate class {class_decl.name!r}", class_decl.location
                )
            info = ClassInfo(decl=class_decl)
            for field_decl in class_decl.fields:
                table = (
                    info.own_static_fields
                    if field_decl.is_static
                    else info.own_instance_fields
                )
                if field_decl.name in table:
                    raise ResolveError(
                        f"duplicate field {field_decl.name!r} in class "
                        f"{class_decl.name!r}",
                        field_decl.location,
                    )
                table[field_decl.name] = field_decl
            for method in class_decl.methods:
                if method.name in info.own_methods:
                    raise ResolveError(
                        f"duplicate method {method.name!r} in class "
                        f"{class_decl.name!r}",
                        method.location,
                    )
                method.class_name = class_decl.name
                info.own_methods[method.name] = method
            self._classes[class_decl.name] = info

        # Link superclasses and reject cycles.
        for info in self._classes.values():
            super_name = info.decl.superclass
            if super_name is None:
                continue
            super_info = self._classes.get(super_name)
            if super_info is None:
                raise ResolveError(
                    f"unknown superclass {super_name!r} of class {info.name!r}",
                    info.decl.location,
                )
            info.superclass = super_info
        for info in self._classes.values():
            seen = set()
            for ancestor in info.ancestors():
                if ancestor.name in seen:
                    raise ResolveError(
                        f"inheritance cycle involving class {ancestor.name!r}",
                        info.decl.location,
                    )
                seen.add(ancestor.name)

    def _normalize_sync_methods(self) -> None:
        """Rewrite ``sync def m`` into a method whose body is one sync block."""
        for class_decl in self._program.classes:
            for method in class_decl.methods:
                if not method.is_sync:
                    continue
                lock: ast.Expr
                if method.is_static:
                    lock = ast.ClassRef(
                        class_name=class_decl.name, location=method.location
                    )
                else:
                    lock = ast.ThisRef(location=method.location)
                sync_block = ast.Sync(
                    lock=lock, body=method.body, location=method.location
                )
                method.body = ast.Block(
                    body=[sync_block], location=method.location
                )

    def _find_main(self) -> ast.MethodDecl:
        main_class = self._classes.get("Main")
        if main_class is None:
            raise ResolveError("program must declare a 'Main' class")
        main = main_class.own_methods.get("main")
        if main is None or not main.is_static or main.params:
            raise ResolveError(
                "class 'Main' must declare 'static def main()' with no parameters"
            )
        return main

    # ------------------------------------------------------------------
    # Method resolution.

    def _resolve_method(self, method: ast.MethodDecl) -> None:
        self._current_method = method
        self._methods.append(method)
        self._scopes = [set(method.params)]
        if len(set(method.params)) != len(method.params):
            raise ResolveError(
                f"duplicate parameter in {method.qualified_name}", method.location
            )
        self._resolve_block(method.body)
        self._scopes = []
        self._current_method = None

    def _declare_local(self, name: str, location: SourceLocation) -> None:
        if any(name in scope for scope in self._scopes):
            raise ResolveError(f"duplicate local variable {name!r}", location)
        self._scopes[-1].add(name)

    def _is_local(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    def _is_class(self, name: str) -> bool:
        return name in self._classes

    # ------------------------------------------------------------------
    # Statements.

    def _resolve_block(self, block: ast.Block) -> None:
        block.stmt_id = self._ids.stmt_id()
        self._scopes.append(set())
        # Statement lists are resolved in place; rewrites replace entries.
        for index, stmt in enumerate(block.body):
            block.body[index] = self._resolve_stmt(stmt)
        self._scopes.pop()

    def _resolve_stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        stmt.stmt_id = self._ids.stmt_id()
        if isinstance(stmt, ast.VarDecl):
            stmt.init = self._resolve_expr(stmt.init)
            self._declare_local(stmt.name, stmt.location)
            return stmt
        if isinstance(stmt, ast.AssignLocal):
            if not self._is_local(stmt.name):
                raise ResolveError(
                    f"assignment to undeclared variable {stmt.name!r}",
                    stmt.location,
                )
            stmt.value = self._resolve_expr(stmt.value)
            return stmt
        if isinstance(stmt, ast.FieldWrite):
            rewritten = self._maybe_static_write(stmt)
            if rewritten is not None:
                return rewritten
            stmt.obj = self._resolve_expr(stmt.obj)
            stmt.value = self._resolve_expr(stmt.value)
            self._register_site(stmt, stmt.field_name)
            return stmt
        if isinstance(stmt, ast.StaticFieldWrite):
            self._check_static_field(stmt.class_name, stmt.field_name, stmt.location)
            stmt.value = self._resolve_expr(stmt.value)
            self._register_site(stmt, stmt.field_name)
            return stmt
        if isinstance(stmt, ast.ArrayWrite):
            stmt.array = self._resolve_expr(stmt.array)
            stmt.index = self._resolve_expr(stmt.index)
            stmt.value = self._resolve_expr(stmt.value)
            self._register_site(stmt, ARRAY_FIELD)
            return stmt
        if isinstance(stmt, ast.If):
            stmt.cond = self._resolve_expr(stmt.cond)
            self._resolve_block(stmt.then_block)
            if stmt.else_block is not None:
                self._resolve_block(stmt.else_block)
            return stmt
        if isinstance(stmt, ast.While):
            stmt.cond = self._resolve_expr(stmt.cond)
            self._resolve_block(stmt.body)
            return stmt
        if isinstance(stmt, ast.Sync):
            stmt.sync_id = self._ids.sync_id()
            stmt.lock = self._resolve_expr(stmt.lock)
            self._resolve_block(stmt.body)
            return stmt
        if isinstance(stmt, ast.Start):
            stmt.thread = self._resolve_expr(stmt.thread)
            return stmt
        if isinstance(stmt, ast.Join):
            stmt.thread = self._resolve_expr(stmt.thread)
            return stmt
        if isinstance(stmt, ast.Wait):
            stmt.target = self._resolve_expr(stmt.target)
            return stmt
        if isinstance(stmt, ast.Notify):
            stmt.target = self._resolve_expr(stmt.target)
            return stmt
        if isinstance(stmt, ast.Barrier):
            stmt.target = self._resolve_expr(stmt.target)
            stmt.parties = self._resolve_expr(stmt.parties)
            return stmt
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = self._resolve_expr(stmt.value)
            return stmt
        if isinstance(stmt, (ast.Print, ast.Assert)):
            if isinstance(stmt, ast.Print):
                stmt.value = self._resolve_expr(stmt.value)
            else:
                stmt.cond = self._resolve_expr(stmt.cond)
            return stmt
        if isinstance(stmt, ast.ExprStmt):
            stmt.expr = self._resolve_expr(stmt.expr)
            return stmt
        if isinstance(stmt, ast.Block):
            self._resolve_block(stmt)
            return stmt
        raise ResolveError(f"unhandled statement {type(stmt).__name__}")

    def _maybe_static_write(self, stmt: ast.FieldWrite) -> Optional[ast.Stmt]:
        """Rewrite ``Class.f = v`` (parsed as a FieldWrite) if applicable."""
        obj = stmt.obj
        if (
            isinstance(obj, ast.VarRef)
            and not self._is_local(obj.name)
            and self._is_class(obj.name)
        ):
            rewritten = ast.StaticFieldWrite(
                class_name=obj.name,
                field_name=stmt.field_name,
                value=stmt.value,
                location=stmt.location,
            )
            rewritten.stmt_id = stmt.stmt_id
            self._check_static_field(
                rewritten.class_name, rewritten.field_name, rewritten.location
            )
            rewritten.value = self._resolve_expr(rewritten.value)
            self._register_site(rewritten, rewritten.field_name)
            return rewritten
        return None

    # ------------------------------------------------------------------
    # Expressions.

    def _resolve_expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, (ast.IntLiteral, ast.BoolLiteral, ast.StringLiteral,
                             ast.NullLiteral, ast.ClassRef)):
            return expr
        if isinstance(expr, ast.ThisRef):
            assert self._current_method is not None
            if self._current_method.is_static:
                raise ResolveError(
                    "'this' used in a static method", expr.location
                )
            return expr
        if isinstance(expr, ast.VarRef):
            if self._is_local(expr.name):
                return expr
            raise ResolveError(
                f"unknown variable {expr.name!r}", expr.location
            )
        if isinstance(expr, ast.Binary):
            expr.left = self._resolve_expr(expr.left)
            expr.right = self._resolve_expr(expr.right)
            return expr
        if isinstance(expr, ast.Unary):
            expr.operand = self._resolve_expr(expr.operand)
            return expr
        if isinstance(expr, ast.FieldRead):
            obj = expr.obj
            if (
                isinstance(obj, ast.VarRef)
                and not self._is_local(obj.name)
                and self._is_class(obj.name)
            ):
                rewritten = ast.StaticFieldRead(
                    class_name=obj.name,
                    field_name=expr.field_name,
                    location=expr.location,
                )
                self._check_static_field(
                    rewritten.class_name, rewritten.field_name, rewritten.location
                )
                self._register_site(rewritten, rewritten.field_name)
                return rewritten
            expr.obj = self._resolve_expr(expr.obj)
            self._register_site(expr, expr.field_name)
            return expr
        if isinstance(expr, ast.StaticFieldRead):
            self._check_static_field(expr.class_name, expr.field_name, expr.location)
            self._register_site(expr, expr.field_name)
            return expr
        if isinstance(expr, ast.ArrayRead):
            expr.array = self._resolve_expr(expr.array)
            expr.index = self._resolve_expr(expr.index)
            self._register_site(expr, ARRAY_FIELD)
            return expr
        if isinstance(expr, ast.New):
            if expr.class_name not in self._classes:
                raise ResolveError(
                    f"unknown class {expr.class_name!r} in 'new'", expr.location
                )
            expr.alloc_id = self._ids.alloc_id()
            expr.args = [self._resolve_expr(arg) for arg in expr.args]
            return expr
        if isinstance(expr, ast.NewArray):
            expr.alloc_id = self._ids.alloc_id()
            expr.size = self._resolve_expr(expr.size)
            return expr
        if isinstance(expr, ast.Call):
            return self._resolve_call(expr)
        raise ResolveError(f"unhandled expression {type(expr).__name__}")

    def _resolve_call(self, expr: ast.Call) -> ast.Expr:
        expr.call_id = self._ids.call_id()
        receiver = expr.receiver
        if receiver is None:
            expr = self._bind_bare_call(expr)
        elif (
            isinstance(receiver, ast.VarRef)
            and not self._is_local(receiver.name)
            and self._is_class(receiver.name)
        ):
            target_class = self._classes[receiver.name]
            method = target_class.resolve_method(expr.method_name)
            if method is None or not method.is_static:
                raise ResolveError(
                    f"no static method {expr.method_name!r} in class "
                    f"{receiver.name!r}",
                    expr.location,
                )
            expr.static_class = method.class_name
            expr.receiver = None
        if expr.receiver is not None:
            expr.receiver = self._resolve_expr(expr.receiver)
        expr.args = [self._resolve_expr(arg) for arg in expr.args]
        return expr

    def _bind_bare_call(self, expr: ast.Call) -> ast.Call:
        """Bind ``m(...)`` to ``this.m(...)`` or a static call."""
        assert self._current_class is not None
        assert self._current_method is not None
        method = self._current_class.resolve_method(expr.method_name)
        if method is None:
            raise ResolveError(
                f"unknown method {expr.method_name!r} in class "
                f"{self._current_class.name!r}",
                expr.location,
            )
        if method.is_static:
            expr.static_class = method.class_name
        else:
            if self._current_method.is_static:
                raise ResolveError(
                    f"instance method {expr.method_name!r} called from "
                    f"static method {self._current_method.qualified_name}",
                    expr.location,
                )
            expr.receiver = ast.ThisRef(location=expr.location)
        return expr

    # ------------------------------------------------------------------
    # Shared checks and registration.

    def _check_static_field(
        self, class_name: str, field_name: str, location: SourceLocation
    ) -> None:
        info = self._classes.get(class_name)
        if info is None:
            raise ResolveError(f"unknown class {class_name!r}", location)
        if info.static_field_owner(field_name) is None:
            raise ResolveError(
                f"class {class_name!r} has no static field {field_name!r}",
                location,
            )

    def _register_site(self, node, field_name: str) -> None:
        assert self._current_method is not None
        site_id = self._ids.site_id()
        node.site_id = site_id
        self._sites[site_id] = SiteInfo(
            site_id=site_id,
            node=node,
            method=self._current_method,
            access_kind=node.access_kind,
            field_name=field_name,
            location=node.location,
        )


def resolve(program: ast.Program, source: Optional[str] = None) -> ResolvedProgram:
    """Resolve a parsed program in one call."""
    return Resolver(program, source).resolve()


def compile_source(source: str, filename: str = "<input>") -> ResolvedProgram:
    """Parse and resolve MJ source text in one call."""
    from .parser import parse

    return resolve(parse(source, filename), source=source)
