"""Token definitions for the MJ language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """The lexical categories of MJ."""

    # Literals and identifiers.
    INT = "int-literal"
    STRING = "string-literal"
    IDENT = "identifier"

    # Keywords.
    CLASS = "class"
    EXTENDS = "extends"
    FIELD = "field"
    STATIC = "static"
    DEF = "def"
    SYNC = "sync"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    RETURN = "return"
    PRINT = "print"
    ASSERT = "assert"
    START = "start"
    JOIN = "join"
    WAIT = "wait"
    NOTIFY = "notify"
    NOTIFYALL = "notifyall"
    BARRIER = "barrier"
    NEW = "new"
    NEWARRAY = "newarray"
    TRUE = "true"
    FALSE = "false"
    NULL = "null"
    THIS = "this"

    # Punctuation and operators.
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    DOT = "."
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "end-of-file"


#: Mapping from keyword spelling to its token kind.
KEYWORDS = {
    kind.value: kind
    for kind in (
        TokenKind.CLASS,
        TokenKind.EXTENDS,
        TokenKind.FIELD,
        TokenKind.STATIC,
        TokenKind.DEF,
        TokenKind.SYNC,
        TokenKind.VAR,
        TokenKind.IF,
        TokenKind.ELSE,
        TokenKind.WHILE,
        TokenKind.RETURN,
        TokenKind.PRINT,
        TokenKind.ASSERT,
        TokenKind.START,
        TokenKind.JOIN,
        TokenKind.WAIT,
        TokenKind.NOTIFY,
        TokenKind.NOTIFYALL,
        TokenKind.BARRIER,
        TokenKind.NEW,
        TokenKind.NEWARRAY,
        TokenKind.TRUE,
        TokenKind.FALSE,
        TokenKind.NULL,
        TokenKind.THIS,
    )
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``text`` is the exact source spelling; for INT tokens ``value`` holds
    the parsed integer, and for STRING tokens the unescaped contents.
    """

    kind: TokenKind
    text: str
    location: SourceLocation
    value: object = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.location}"
