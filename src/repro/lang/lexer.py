"""Hand-written lexer for the MJ language.

The lexer is a straightforward single-pass scanner producing a list of
:class:`~repro.lang.tokens.Token`.  It supports ``//`` line comments and
``/* ... */`` block comments, decimal integer literals, and double-quoted
string literals with ``\\n``, ``\\t``, ``\\"`` and ``\\\\`` escapes.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPERATORS = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPERATORS = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}

_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "0": "\0"}


class Lexer:
    """Tokenizes MJ source text."""

    def __init__(self, source: str, filename: str = "<input>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> list[Token]:
        """Scan the entire input and return its tokens, ending with EOF."""
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self._at_end():
                tokens.append(Token(TokenKind.EOF, "", self._location()))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    # Scanning helpers.

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column, self._filename)

    def _at_end(self) -> bool:
        return self._pos >= len(self._source)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self) -> str:
        char = self._source[self._pos]
        self._pos += 1
        if char == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return char

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments."""
        while not self._at_end():
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._at_end():
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    # ------------------------------------------------------------------
    # Token producers.

    def _next_token(self) -> Token:
        location = self._location()
        char = self._peek()
        if char.isdigit():
            return self._scan_number(location)
        if char.isalpha() or char == "_":
            return self._scan_word(location)
        if char == '"':
            return self._scan_string(location)
        two = self._peek() + self._peek(1)
        if two in _TWO_CHAR_OPERATORS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPERATORS[two], two, location)
        if char in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(_ONE_CHAR_OPERATORS[char], char, location)
        raise LexError(f"unexpected character {char!r}", location)

    def _scan_number(self, location: SourceLocation) -> Token:
        text = []
        while self._peek().isdigit():
            text.append(self._advance())
        spelling = "".join(text)
        return Token(TokenKind.INT, spelling, location, value=int(spelling))

    def _scan_word(self, location: SourceLocation) -> Token:
        text = []
        while self._peek().isalnum() or self._peek() == "_":
            text.append(self._advance())
        spelling = "".join(text)
        kind = KEYWORDS.get(spelling, TokenKind.IDENT)
        return Token(kind, spelling, location)

    def _scan_string(self, location: SourceLocation) -> Token:
        self._advance()  # Opening quote.
        chars: list[str] = []
        while True:
            if self._at_end() or self._peek() == "\n":
                raise LexError("unterminated string literal", location)
            char = self._advance()
            if char == '"':
                break
            if char == "\\":
                escape = self._advance()
                if escape not in _ESCAPES:
                    raise LexError(f"invalid escape \\{escape}", location)
                chars.append(_ESCAPES[escape])
            else:
                chars.append(char)
        value = "".join(chars)
        return Token(TokenKind.STRING, f'"{value}"', location, value=value)


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source, filename).tokenize()
