"""Experiment harness: named configurations, runners, table builders."""

from .runner import (
    CONFIG_BASE,
    CONFIG_FIELDS_MERGED,
    CONFIG_FULL,
    CONFIG_NO_CACHE,
    CONFIG_NO_DOMINATORS,
    CONFIG_NO_OWNERSHIP,
    CONFIG_NO_PEELING,
    CONFIG_NO_STATIC,
    TABLE2_CONFIGS,
    TABLE3_CONFIGS,
    Configuration,
    RunOutcome,
    overhead_percent,
    run_table2_row,
    run_table3_row,
    run_workload,
)
from .explore import ExplorationResult, explore_schedules
from .report import build_report, write_report
from .tables import (
    format_table,
    space_report,
    table1,
    table2,
    table2_events,
    table3,
)

__all__ = [
    "CONFIG_BASE",
    "CONFIG_FIELDS_MERGED",
    "CONFIG_FULL",
    "CONFIG_NO_CACHE",
    "CONFIG_NO_DOMINATORS",
    "CONFIG_NO_OWNERSHIP",
    "CONFIG_NO_PEELING",
    "CONFIG_NO_STATIC",
    "Configuration",
    "ExplorationResult",
    "RunOutcome",
    "TABLE2_CONFIGS",
    "TABLE3_CONFIGS",
    "build_report",
    "explore_schedules",
    "format_table",
    "overhead_percent",
    "run_table2_row",
    "run_table3_row",
    "run_workload",
    "space_report",
    "table1",
    "table2",
    "table2_events",
    "table3",
    "write_report",
]
