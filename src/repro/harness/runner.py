"""Experiment runner: executes workloads under named configurations.

One :class:`Configuration` bundles a compile-time
:class:`~repro.instrument.planner.PlannerConfig` with a runtime
:class:`~repro.detector.config.DetectorConfig`; the named presets map
to the columns of the paper's Tables 2 and 3:

============== ============================ =========================
name           compile-time                 runtime
============== ============================ =========================
Base           no instrumentation at all    no detector
Full           static + weaker + peeling    ownership + cache + trie
NoStatic       every site instrumented      Full runtime
NoDominators   static only (no weaker/peel) Full runtime
NoPeeling      static + weaker, no peeling  Full runtime
NoCache        Full compile-time            cache disabled
FieldsMerged   Full compile-time            object-granularity keys
NoOwnership    Full compile-time            ownership disabled
============== ============================ =========================

Each run compiles the workload source fresh (the planner transforms the
AST in place), plans instrumentation, attaches the detector, executes
under a deterministic scheduler, and reports wall-clock time together
with the platform-independent counters the reproduction relies on
(events emitted, cache hits, trie work, races found).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..detector.config import DetectorConfig
from ..detector.pipeline import RaceDetector
from ..instrument.planner import PlannerConfig, plan_instrumentation
from ..lang.resolver import compile_source
from ..runtime.interpreter import run_program
from ..runtime.scheduler import RoundRobinPolicy, SchedulingPolicy
from ..workloads.base import WorkloadSpec


@dataclass(frozen=True)
class Configuration:
    """A named experiment configuration."""

    name: str
    #: None = no instrumentation (the Base configuration).
    planner: Optional[PlannerConfig]
    #: None = no detector attached.
    detector: Optional[DetectorConfig]


def _full_planner() -> PlannerConfig:
    return PlannerConfig()


#: Table 2 configurations (performance).
CONFIG_BASE = Configuration("Base", planner=None, detector=None)
CONFIG_FULL = Configuration("Full", _full_planner(), DetectorConfig())
CONFIG_NO_STATIC = Configuration(
    "NoStatic", _full_planner().but(static_analysis=False), DetectorConfig()
)
CONFIG_NO_DOMINATORS = Configuration(
    "NoDominators",
    _full_planner().but(static_weaker=False, loop_peeling=False),
    DetectorConfig(),
)
CONFIG_NO_PEELING = Configuration(
    "NoPeeling", _full_planner().but(loop_peeling=False), DetectorConfig()
)
CONFIG_NO_CACHE = Configuration(
    "NoCache", _full_planner(), DetectorConfig(cache=False)
)

#: Table 3 configurations (accuracy).
CONFIG_FIELDS_MERGED = Configuration(
    "FieldsMerged", _full_planner(), DetectorConfig(fields_merged=True)
)
CONFIG_NO_OWNERSHIP = Configuration(
    "NoOwnership", _full_planner(), DetectorConfig(ownership=False)
)

TABLE2_CONFIGS = [
    CONFIG_BASE,
    CONFIG_FULL,
    CONFIG_NO_STATIC,
    CONFIG_NO_DOMINATORS,
    CONFIG_NO_PEELING,
    CONFIG_NO_CACHE,
]

TABLE3_CONFIGS = [CONFIG_FULL, CONFIG_FIELDS_MERGED, CONFIG_NO_OWNERSHIP]


@dataclass
class RunOutcome:
    """Everything measured in one execution."""

    workload: str
    configuration: str
    wall_seconds: float
    steps: int
    threads: int
    output: list[str]
    #: Sites actually instrumented (0 for Base).
    sites_instrumented: int
    #: Access events emitted to the detector.
    events: int
    races_reported: int
    racy_objects: frozenset
    racy_object_count: int
    cache_hits: int = 0
    cache_hit_rate: float = 0.0
    owned_filtered: int = 0
    weaker_filtered: int = 0
    trie_nodes: int = 0
    monitored_locations: int = 0
    detector: Optional[RaceDetector] = None


def run_workload(
    spec: WorkloadSpec,
    configuration: Configuration,
    scale: Optional[int] = None,
    policy: Optional[SchedulingPolicy] = None,
    max_steps: int = 50_000_000,
) -> RunOutcome:
    """Compile, plan, execute, and measure one workload/config pair.

    Compilation and planning happen *outside* the timed region — the
    paper measures runtime overhead of the instrumented executable, not
    compile time.
    """
    source = spec.build(scale)
    resolved = compile_source(source, filename=spec.name)

    trace_sites: Optional[set] = set()
    detector: Optional[RaceDetector] = None
    sites_instrumented = 0
    static_races = None
    if configuration.planner is not None:
        plan = plan_instrumentation(resolved, configuration.planner)
        trace_sites = plan.trace_sites
        sites_instrumented = len(trace_sites)
        static_races = plan.static_races
    if configuration.detector is not None:
        detector = RaceDetector(
            config=configuration.detector,
            resolved=resolved,
            static_races=static_races,
        )

    chosen_policy = policy if policy is not None else RoundRobinPolicy(quantum=10)
    started = time.perf_counter()
    result = run_program(
        resolved,
        sink=detector,
        trace_sites=trace_sites,
        policy=chosen_policy,
        max_steps=max_steps,
    )
    elapsed = time.perf_counter() - started

    outcome = RunOutcome(
        workload=spec.name,
        configuration=configuration.name,
        wall_seconds=elapsed,
        steps=result.steps,
        threads=result.threads_created,
        output=result.output,
        sites_instrumented=sites_instrumented,
        events=result.accesses_emitted,
        races_reported=0,
        racy_objects=frozenset(),
        racy_object_count=0,
        detector=detector,
    )
    if detector is not None:
        outcome.races_reported = detector.stats.races_reported
        outcome.racy_objects = frozenset(detector.reports.racy_objects)
        outcome.racy_object_count = detector.reports.object_count
        outcome.cache_hits = detector.cache.stats.hits if detector.cache else 0
        outcome.cache_hit_rate = (
            detector.cache.stats.hit_rate if detector.cache else 0.0
        )
        outcome.owned_filtered = detector.stats.owned_filtered
        outcome.weaker_filtered = detector.stats.detector_weaker_filtered
        outcome.trie_nodes = detector.total_trie_nodes()
        outcome.monitored_locations = detector.monitored_locations
    return outcome


def run_table2_row(
    spec: WorkloadSpec,
    scale: Optional[int] = None,
    repeats: int = 3,
    configs=None,
) -> dict[str, RunOutcome]:
    """Run every Table 2 configuration; keeps the best of ``repeats``
    runs per configuration, as the paper does ("the best-performing
    run" of five)."""
    results: dict[str, RunOutcome] = {}
    for config in configs if configs is not None else TABLE2_CONFIGS:
        best: Optional[RunOutcome] = None
        for _ in range(repeats):
            outcome = run_workload(spec, config, scale=scale)
            if best is None or outcome.wall_seconds < best.wall_seconds:
                best = outcome
        results[config.name] = best
    return results


def run_table3_row(
    spec: WorkloadSpec, scale: Optional[int] = None
) -> dict[str, RunOutcome]:
    """Run the Table 3 accuracy configurations once each."""
    return {
        config.name: run_workload(spec, config, scale=scale)
        for config in TABLE3_CONFIGS
    }


def overhead_percent(base: RunOutcome, instrumented: RunOutcome) -> float:
    """Overhead relative to the Base run, as Table 2 reports it."""
    if base.wall_seconds <= 0:
        return 0.0
    return (instrumented.wall_seconds / base.wall_seconds - 1.0) * 100.0
