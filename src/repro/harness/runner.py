"""Experiment runner: executes workloads under named configurations.

One :class:`Configuration` bundles a compile-time
:class:`~repro.instrument.planner.PlannerConfig` with a runtime
:class:`~repro.detector.config.DetectorConfig`; the named presets map
to the columns of the paper's Tables 2 and 3:

============== ============================ =========================
name           compile-time                 runtime
============== ============================ =========================
Base           no instrumentation at all    no detector
Full           static + weaker + peeling    ownership + cache + trie
NoStatic       every site instrumented      Full runtime
NoDominators   static only (no weaker/peel) Full runtime
NoPeeling      static + weaker, no peeling  Full runtime
NoCache        Full compile-time            cache disabled
FieldsMerged   Full compile-time            object-granularity keys
NoOwnership    Full compile-time            ownership disabled
============== ============================ =========================

Each run compiles the workload source fresh (the planner transforms the
AST in place), plans instrumentation, attaches the detector, executes
under a deterministic scheduler, and reports wall-clock time together
with the platform-independent counters the reproduction relies on
(events emitted, cache hits, trie work, races found).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..detector.config import DetectorConfig
from ..detector.pipeline import RaceDetector
from ..instrument.planner import PlannerConfig, plan_instrumentation
from ..lang.resolver import compile_source
from ..runtime import DEFAULT_ENGINE, engine_class
from ..runtime.tiering import TierCounters
from ..runtime.scheduler import RoundRobinPolicy, SchedulingPolicy
from ..workloads.base import WorkloadSpec


@dataclass(frozen=True)
class Configuration:
    """A named experiment configuration."""

    name: str
    #: None = no instrumentation (the Base configuration).
    planner: Optional[PlannerConfig]
    #: None = no detector attached.
    detector: Optional[DetectorConfig]


def _full_planner() -> PlannerConfig:
    return PlannerConfig()


#: Table 2 configurations (performance).
CONFIG_BASE = Configuration("Base", planner=None, detector=None)
CONFIG_FULL = Configuration("Full", _full_planner(), DetectorConfig())
CONFIG_NO_STATIC = Configuration(
    "NoStatic", _full_planner().but(static_analysis=False), DetectorConfig()
)
CONFIG_NO_DOMINATORS = Configuration(
    "NoDominators",
    _full_planner().but(static_weaker=False, loop_peeling=False),
    DetectorConfig(),
)
CONFIG_NO_PEELING = Configuration(
    "NoPeeling", _full_planner().but(loop_peeling=False), DetectorConfig()
)
CONFIG_NO_CACHE = Configuration(
    "NoCache", _full_planner(), DetectorConfig(cache=False)
)

#: Table 3 configurations (accuracy).
CONFIG_FIELDS_MERGED = Configuration(
    "FieldsMerged", _full_planner(), DetectorConfig(fields_merged=True)
)
CONFIG_NO_OWNERSHIP = Configuration(
    "NoOwnership", _full_planner(), DetectorConfig(ownership=False)
)

TABLE2_CONFIGS = [
    CONFIG_BASE,
    CONFIG_FULL,
    CONFIG_NO_STATIC,
    CONFIG_NO_DOMINATORS,
    CONFIG_NO_PEELING,
    CONFIG_NO_CACHE,
]

TABLE3_CONFIGS = [CONFIG_FULL, CONFIG_FIELDS_MERGED, CONFIG_NO_OWNERSHIP]


class TimedRaceDetector(RaceDetector):
    """A :class:`RaceDetector` that attributes wall-clock to phases.

    The paper's overhead story has distinct layers: interpreting the
    program, filtering events (location interning + the ownership
    model), probing the per-thread access caches, and the lockset/trie
    detector proper.  This subclass times the sink hot path and its two
    inner stages, so a harness run can split its wall time into
    ``interpret`` / ``filter`` / ``cache`` / ``lockset_trie``.

    The timer calls themselves add overhead to the measured run, so
    breakdowns are for *attribution* (which layer dominates), not for
    comparing absolute totals against untimed runs.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Total time inside the access-event sink (all phases below).
        self.sink_seconds = 0.0
        #: Time inside the per-thread access-cache probe.
        self.cache_seconds = 0.0
        #: Time inside the lockset/trie detector (weaker-than check,
        #: race lookup, insert/prune, reporting).
        self.detect_seconds = 0.0
        inner = self._cache_access
        if inner is not None:

            def timed_cache(thread_id, key, kind, locks, _inner=inner):
                started = time.perf_counter()
                try:
                    return _inner(thread_id, key, kind, locks)
                finally:
                    self.cache_seconds += time.perf_counter() - started

            self._cache_access = timed_cache

    def on_access_parts(
        self, object_uid, field, thread_id, kind, site_id, object_kind,
        object_label,
    ) -> None:
        started = time.perf_counter()
        try:
            super().on_access_parts(
                object_uid, field, thread_id, kind, site_id, object_kind,
                object_label,
            )
        finally:
            self.sink_seconds += time.perf_counter() - started

    def _detect_parts(self, *args) -> None:
        started = time.perf_counter()
        try:
            super()._detect_parts(*args)
        finally:
            self.detect_seconds += time.perf_counter() - started

    def phase_seconds(self, wall_seconds: float) -> dict:
        """Split ``wall_seconds`` (the run's wall time) into phases.

        ``interpret`` is everything outside the sink — program
        execution plus event emission; ``filter`` is the sink time not
        spent in the cache probe or the detector (interning +
        ownership).
        """
        filter_seconds = max(
            self.sink_seconds - self.cache_seconds - self.detect_seconds, 0.0
        )
        return {
            "interpret": max(wall_seconds - self.sink_seconds, 0.0),
            "filter": filter_seconds,
            "cache": self.cache_seconds,
            "lockset_trie": self.detect_seconds,
        }


@dataclass
class RunOutcome:
    """Everything measured in one execution."""

    workload: str
    configuration: str
    wall_seconds: float
    steps: int
    threads: int
    output: list[str]
    #: Sites actually instrumented (0 for Base).
    sites_instrumented: int
    #: Access events emitted to the detector.
    events: int
    races_reported: int
    racy_objects: frozenset
    racy_object_count: int
    cache_hits: int = 0
    cache_hit_rate: float = 0.0
    owned_filtered: int = 0
    weaker_filtered: int = 0
    trie_nodes: int = 0
    monitored_locations: int = 0
    #: Tier-transition counters when the compiled engine ran with
    #: ``tiering="on"`` and the tiering layer engaged; None otherwise.
    tiering: Optional[TierCounters] = None
    detector: Optional[RaceDetector] = None


def run_workload(
    spec: WorkloadSpec,
    configuration: Configuration,
    scale: Optional[int] = None,
    policy: Optional[SchedulingPolicy] = None,
    max_steps: int = 50_000_000,
    engine: str = DEFAULT_ENGINE,
    detector_class: type = RaceDetector,
    tiering: Optional[str] = None,
) -> RunOutcome:
    """Compile, plan, execute, and measure one workload/config pair.

    Compilation and planning happen *outside* the timed region — the
    paper measures runtime overhead of the instrumented executable, not
    compile time.  Engine construction is likewise outside: for the
    compiled engine it includes closure compilation, which is compile
    time by the same argument.

    ``detector_class`` swaps the detector implementation (e.g.
    :class:`TimedRaceDetector` for phase attribution); it must be a
    :class:`RaceDetector` subclass with the same constructor.

    ``tiering`` selects the compiled engine's instrumentation-elision
    tier (``"off"``/``"on"``; None defers to ``REPRO_TIERING``).  The
    AST engine validates and ignores it.
    """
    source = spec.build(scale)
    resolved = compile_source(source, filename=spec.name)

    trace_sites: Optional[set] = set()
    detector: Optional[RaceDetector] = None
    sites_instrumented = 0
    static_races = None
    if configuration.planner is not None:
        plan = plan_instrumentation(resolved, configuration.planner)
        trace_sites = plan.trace_sites
        sites_instrumented = len(trace_sites)
        static_races = plan.static_races
    if configuration.detector is not None:
        detector = detector_class(
            config=configuration.detector,
            resolved=resolved,
            static_races=static_races,
        )

    chosen_policy = policy if policy is not None else RoundRobinPolicy(quantum=10)
    runner = engine_class(engine)(
        resolved,
        sink=detector,
        trace_sites=trace_sites,
        policy=chosen_policy,
        max_steps=max_steps,
        tiering=tiering,
    )
    started = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - started

    outcome = RunOutcome(
        workload=spec.name,
        configuration=configuration.name,
        wall_seconds=elapsed,
        steps=result.steps,
        threads=result.threads_created,
        output=result.output,
        sites_instrumented=sites_instrumented,
        events=result.accesses_emitted,
        races_reported=0,
        racy_objects=frozenset(),
        racy_object_count=0,
        detector=detector,
    )
    if detector is not None:
        outcome.races_reported = detector.stats.races_reported
        outcome.racy_objects = frozenset(detector.reports.racy_objects)
        outcome.racy_object_count = detector.reports.object_count
        outcome.cache_hits = detector.cache.stats.hits if detector.cache else 0
        outcome.cache_hit_rate = (
            detector.cache.stats.hit_rate if detector.cache else 0.0
        )
        outcome.owned_filtered = detector.stats.owned_filtered
        outcome.weaker_filtered = detector.stats.detector_weaker_filtered
        outcome.trie_nodes = detector.total_trie_nodes()
        outcome.monitored_locations = detector.monitored_locations
        outcome.tiering = detector.tiering
    return outcome


@dataclass
class PhaseBreakdown:
    """Wall-clock attribution for one on-the-fly detection run."""

    workload: str
    configuration: str
    engine: str
    wall_seconds: float
    #: Program execution + event emission (everything outside the sink).
    interpret_seconds: float
    #: Location interning + ownership filtering inside the sink.
    filter_seconds: float
    #: Per-thread access-cache probes.
    cache_seconds: float
    #: Lockset/trie detection (weaker-than, race lookup, insert/prune).
    lockset_trie_seconds: float
    outcome: RunOutcome

    def rows(self) -> list:
        """``(phase, seconds, percent)`` rows, detection phases last."""
        wall = self.wall_seconds or 1e-12
        return [
            (name, seconds, 100.0 * seconds / wall)
            for name, seconds in (
                ("interpret", self.interpret_seconds),
                ("filter", self.filter_seconds),
                ("cache", self.cache_seconds),
                ("lockset/trie", self.lockset_trie_seconds),
            )
        ]


def run_workload_phases(
    spec: WorkloadSpec,
    configuration: Configuration = CONFIG_FULL,
    scale: Optional[int] = None,
    policy: Optional[SchedulingPolicy] = None,
    max_steps: int = 50_000_000,
    engine: str = DEFAULT_ENGINE,
    tiering: Optional[str] = None,
) -> PhaseBreakdown:
    """Run one workload with phase timers attached to the detector.

    Requires a configuration with a detector (the breakdown is
    meaningless for Base).  The timers add measurement overhead, so the
    split is for attribution, not cross-run absolute comparison.

    Under ``tiering="on"`` the tier-0 inline fast path runs outside the
    timed sink, so its time lands in the ``interpret`` phase — the
    attribution reflects that elided accesses genuinely cost only
    interpreter time.
    """
    if configuration.detector is None:
        raise ValueError(
            f"configuration {configuration.name!r} has no detector; "
            "phase breakdown needs an on-the-fly detection run"
        )
    outcome = run_workload(
        spec,
        configuration,
        scale=scale,
        policy=policy,
        max_steps=max_steps,
        engine=engine,
        detector_class=TimedRaceDetector,
        tiering=tiering,
    )
    phases = outcome.detector.phase_seconds(outcome.wall_seconds)
    return PhaseBreakdown(
        workload=spec.name,
        configuration=configuration.name,
        engine=engine,
        wall_seconds=outcome.wall_seconds,
        interpret_seconds=phases["interpret"],
        filter_seconds=phases["filter"],
        cache_seconds=phases["cache"],
        lockset_trie_seconds=phases["lockset_trie"],
        outcome=outcome,
    )


@dataclass
class PostMortemOutcome:
    """One recorded execution analyzed serially and sharded."""

    workload: str
    configuration: str
    #: Wall-clock of the recording run (interpretation + logging).
    record_seconds: float
    #: Wall-clock of the serial offline detection pass.
    serial_seconds: float
    #: Wall-clock of the sharded offline detection pass.
    sharded_seconds: float
    shards: int
    executor: str
    access_events: int
    replicated_sync_events: int
    races_reported: int
    monitored_locations: int
    trie_nodes: int
    #: True when the sharded run reproduced the serial run exactly
    #: (same reports, monitored locations, and trie node totals).
    matches_serial: bool
    sharded: "object" = None
    #: ``"tuple"`` (in-memory entries) or ``"binary"`` (MJBL file,
    #: mmap-backed detection).
    log_format: str = "tuple"
    #: On-disk size of the binary log, when one was recorded.
    log_bytes: int = 0


def run_workload_post_mortem(
    spec: WorkloadSpec,
    configuration: Configuration,
    shards: int = 4,
    scale: Optional[int] = None,
    executor: str = "serial",
    policy: Optional[SchedulingPolicy] = None,
    max_steps: int = 50_000_000,
    engine: str = DEFAULT_ENGINE,
    log_format: str = "tuple",
    log_path=None,
) -> PostMortemOutcome:
    """Record one execution, then detect offline both serially and
    sharded, checking that the two agree.

    ``log_format`` selects the at-rest representation: ``"tuple"``
    records into an in-memory :class:`RecordingSink`; ``"binary"``
    streams an MJBL file (to ``log_path``, or a temporary file) and
    both detection passes run over the mapped reader — the zero-copy
    path.  Reports are identical either way; the harness asserts it.
    """
    from contextlib import ExitStack

    from ..detector.postmortem import detect_from_log
    from ..detector.sharded import canonical_report_order, detect_sharded
    from ..runtime.binlog import (
        BinaryLogReader,
        BinaryLogSink,
        temporary_binary_log,
    )
    from ..runtime.events import RecordingSink

    if configuration.detector is None:
        raise ValueError("post-mortem detection needs a detector config")
    if log_format not in ("tuple", "binary"):
        raise ValueError(f"unknown log format {log_format!r}")
    source = spec.build(scale)
    resolved = compile_source(source, filename=spec.name)
    trace_sites: Optional[set] = set()
    static_races = None
    if configuration.planner is not None:
        plan = plan_instrumentation(resolved, configuration.planner)
        trace_sites = plan.trace_sites
        static_races = plan.static_races

    # Every resource from here on registers with the stack the moment
    # it exists, so a failure anywhere — engine construction, the
    # recording run, opening the reader, detection — still closes the
    # sink and removes the temp file (the old shape only guarded the
    # detection block, leaking both on a mid-record failure).
    with ExitStack() as stack:
        binary_path = None
        if log_format == "binary":
            if log_path is not None:
                binary_path = Path(log_path)
            else:
                binary_path = stack.enter_context(temporary_binary_log())
            log = BinaryLogSink(binary_path)
            stack.callback(log.close)
        else:
            log = RecordingSink()
        chosen_policy = (
            policy if policy is not None else RoundRobinPolicy(quantum=10)
        )
        recorder = engine_class(engine)(
            resolved,
            sink=log,
            trace_sites=trace_sites,
            policy=chosen_policy,
            max_steps=max_steps,
        )
        started = time.perf_counter()
        recorder.run()
        if log_format == "binary":
            log.close()
        record_seconds = time.perf_counter() - started
        log_bytes = (
            binary_path.stat().st_size if binary_path is not None else 0
        )

        if log_format == "binary":
            detectable = BinaryLogReader(binary_path)
            stack.callback(detectable.close)
        else:
            detectable = log

        started = time.perf_counter()
        serial, _ = detect_from_log(
            detectable,
            config=configuration.detector,
            resolved=resolved,
            static_races=static_races,
        )
        serial_seconds = time.perf_counter() - started

        started = time.perf_counter()
        sharded = detect_sharded(
            detectable,
            shards,
            config=configuration.detector,
            resolved=resolved,
            static_races=static_races,
            executor=executor,
            validate=False,  # detect_from_log above already validated
        )
        sharded_seconds = time.perf_counter() - started

    matches = (
        sharded.reports.reports
        == canonical_report_order(serial.reports.reports)
        and sharded.monitored_locations == serial.monitored_locations
        and sharded.trie_nodes == serial.total_trie_nodes()
    )
    return PostMortemOutcome(
        workload=spec.name,
        configuration=configuration.name,
        record_seconds=record_seconds,
        serial_seconds=serial_seconds,
        sharded_seconds=sharded_seconds,
        shards=shards,
        executor=executor,
        access_events=sharded.partitioned_accesses,
        replicated_sync_events=sharded.replicated_sync_events,
        races_reported=sharded.races,
        monitored_locations=sharded.monitored_locations,
        trie_nodes=sharded.trie_nodes,
        matches_serial=matches,
        sharded=sharded,
        log_format=log_format,
        log_bytes=log_bytes,
    )


def run_table2_row(
    spec: WorkloadSpec,
    scale: Optional[int] = None,
    repeats: int = 3,
    configs=None,
    engine: str = DEFAULT_ENGINE,
) -> dict[str, RunOutcome]:
    """Run every Table 2 configuration; keeps the best of ``repeats``
    runs per configuration, as the paper does ("the best-performing
    run" of five)."""
    results: dict[str, RunOutcome] = {}
    for config in configs if configs is not None else TABLE2_CONFIGS:
        best: Optional[RunOutcome] = None
        for _ in range(repeats):
            outcome = run_workload(spec, config, scale=scale, engine=engine)
            if best is None or outcome.wall_seconds < best.wall_seconds:
                best = outcome
        results[config.name] = best
    return results


def run_table3_row(
    spec: WorkloadSpec,
    scale: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> dict[str, RunOutcome]:
    """Run the Table 3 accuracy configurations once each."""
    return {
        config.name: run_workload(spec, config, scale=scale, engine=engine)
        for config in TABLE3_CONFIGS
    }


def overhead_percent(base: RunOutcome, instrumented: RunOutcome) -> float:
    """Overhead relative to the Base run, as Table 2 reports it."""
    if base.wall_seconds <= 0:
        return 0.0
    return (instrumented.wall_seconds / base.wall_seconds - 1.0) * 100.0
