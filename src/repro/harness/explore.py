"""Schedule exploration: widening dynamic coverage across interleavings.

Section 9 notes a dynamic detector's inherent coverage limit — it "only
reports dataraces observed in a single dynamic execution" — and that
tools can widen coverage by considering alternate orderings.  The MJ
scheduler makes that trivial to do honestly: run the same program under
many seeds and aggregate.

The lockset definition already makes single runs unusually thorough
(feasible races are reported regardless of the observed order — the
Section 2.2 argument), so exploration mostly catches races whose code
path is schedule-dependent (a branch taken only under some
interleavings), plus the rare ownership-timing misses of Section 7.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..detector.config import DetectorConfig
from ..detector.pipeline import RaceDetector
from ..instrument.planner import PlannerConfig, plan_instrumentation
from ..lang.resolver import compile_source
from ..runtime.interpreter import run_program
from ..runtime.scheduler import RandomPolicy


@dataclass
class ExplorationResult:
    """Aggregated findings over many schedules."""

    seeds: list[int]
    #: Union of racy object labels over all runs.
    racy_objects: set = field(default_factory=set)
    #: object label -> first seed that exposed it.
    first_seen: dict = field(default_factory=dict)
    #: seed -> frozenset of that run's racy objects.
    per_seed: dict = field(default_factory=dict)

    @property
    def schedule_dependent_objects(self) -> set:
        """Objects some runs report and others miss."""
        if not self.per_seed:
            return set()
        always = set.intersection(*map(set, self.per_seed.values()))
        return self.racy_objects - always

    @property
    def stable_objects(self) -> set:
        """Objects every explored schedule reports."""
        if not self.per_seed:
            return set()
        return set.intersection(*map(set, self.per_seed.values()))


def explore_schedules(
    source: str,
    seeds=range(8),
    planner_config: Optional[PlannerConfig] = None,
    detector_config: Optional[DetectorConfig] = None,
    max_steps: int = 10_000_000,
) -> ExplorationResult:
    """Run the full pipeline once per seed and aggregate the reports.

    The program is recompiled (and re-planned) per seed because the
    planner transforms the AST in place; static results are identical
    across seeds, only the interleaving varies.
    """
    result = ExplorationResult(seeds=list(seeds))
    for seed in result.seeds:
        resolved = compile_source(source)
        plan = plan_instrumentation(
            resolved,
            planner_config if planner_config is not None else PlannerConfig(),
        )
        detector = RaceDetector(config=detector_config, resolved=resolved)
        run_program(
            resolved,
            sink=detector,
            trace_sites=plan.trace_sites,
            policy=RandomPolicy(seed),
            max_steps=max_steps,
        )
        found = frozenset(detector.reports.racy_objects)
        result.per_seed[seed] = found
        for label in found:
            result.racy_objects.add(label)
            result.first_seen.setdefault(label, seed)
    return result
