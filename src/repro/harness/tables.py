"""Table rendering for the experiment harness.

Produces the same rows the paper reports: Table 1 (benchmark
characteristics), Table 2 (runtime performance per configuration, with
overhead percentages against Base), and Table 3 (racy-object counts per
accuracy variant), plus the Section 8.2 space numbers.
"""

from __future__ import annotations

from typing import Optional

from ..workloads.base import WorkloadSpec
from .runner import (
    TABLE2_CONFIGS,
    overhead_percent,
    run_table2_row,
    run_table3_row,
    run_workload,
    CONFIG_FULL,
)


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain monospace table with aligned columns."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def table1(specs: list[WorkloadSpec], scale: Optional[int] = None) -> str:
    """Benchmark characteristics (the paper's Table 1)."""
    rows = []
    for spec in specs:
        outcome = run_workload(spec, CONFIG_FULL, scale=scale)
        rows.append(
            [
                spec.name,
                str(spec.loc(scale)),
                str(outcome.threads),
                spec.description,
            ]
        )
    return format_table(
        ["Example", "Lines of MJ", "Num. Dynamic Threads", "Description"], rows
    )


def table2(
    specs: list[WorkloadSpec],
    scale: Optional[int] = None,
    repeats: int = 3,
) -> tuple[str, dict]:
    """Runtime performance (the paper's Table 2).

    Returns the rendered table and the raw per-config outcomes.
    """
    headers = ["Example", "Base"] + [
        config.name for config in TABLE2_CONFIGS if config.name != "Base"
    ]
    rows = []
    raw: dict = {}
    for spec in specs:
        outcomes = run_table2_row(spec, scale=scale, repeats=repeats)
        raw[spec.name] = outcomes
        base = outcomes["Base"]
        row = [spec.name, f"{base.wall_seconds:.3f}s"]
        for config in TABLE2_CONFIGS:
            if config.name == "Base":
                continue
            outcome = outcomes[config.name]
            pct = overhead_percent(base, outcome)
            row.append(f"{outcome.wall_seconds:.3f}s ({pct:+.0f}%)")
        rows.append(row)
    return format_table(headers, rows), raw


def table2_events(raw: dict) -> str:
    """The platform-independent companion of Table 2: events emitted
    per configuration (wall-clock on a Python interpreter is noisy; the
    event counts show the optimization structure exactly)."""
    config_names = [c.name for c in TABLE2_CONFIGS if c.name != "Base"]
    headers = ["Example"] + config_names
    rows = []
    for workload, outcomes in raw.items():
        rows.append(
            [workload]
            + [str(outcomes[name].events) for name in config_names]
        )
    return format_table(headers, rows)


def table3(specs: list[WorkloadSpec], scale: Optional[int] = None) -> tuple[str, dict]:
    """Number of objects with dataraces reported (the paper's Table 3)."""
    headers = ["Example", "Full", "FieldsMerged", "NoOwnership", "Paper (F/FM/NO)"]
    rows = []
    raw: dict = {}
    for spec in specs:
        outcomes = run_table3_row(spec, scale=scale)
        raw[spec.name] = outcomes
        paper = (
            "/".join(str(n) for n in spec.paper_table3)
            if spec.paper_table3
            else "-"
        )
        rows.append(
            [
                spec.name,
                str(outcomes["Full"].racy_object_count),
                str(outcomes["FieldsMerged"].racy_object_count),
                str(outcomes["NoOwnership"].racy_object_count),
                paper,
            ]
        )
    return format_table(headers, rows), raw


def space_report(spec: WorkloadSpec, scale: Optional[int] = None) -> str:
    """Section 8.2's space numbers: trie nodes and monitored locations."""
    outcome = run_workload(spec, CONFIG_FULL, scale=scale)
    return (
        f"{spec.name}: {outcome.trie_nodes} trie nodes holding history for "
        f"{outcome.monitored_locations} memory locations "
        f"(paper reports 7967 nodes / 6562 locations for tsp)"
    )
