"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``check FILE.mj``
    Run the full pipeline on an MJ program and print race reports.
    ``--no-static`` / ``--no-weaker`` / ``--no-peeling`` /
    ``--no-cache`` / ``--no-ownership`` / ``--fields-merged`` toggle
    the paper's configuration axes; ``--seed N`` picks a random
    interleaving; ``--deadlocks`` also runs the lock-order analysis;
    ``--stats`` prints the event funnel and cache statistics;
    ``--phase-times`` splits wall time into interpret / filter /
    cache / lockset-trie phases.

``run FILE.mj``
    Execute a program uninstrumented and print its output.
    ``--record PATH`` / ``--record-binary PATH`` additionally log the
    full event stream to disk (JSON tuple log / ``MJBL`` binary log)
    for later ``check --from-log`` analysis.

``log-stats PATH``
    Summarize a recorded event log of either format: event counts by
    kind, distinct locations/threads/locks, string-table size,
    bytes/event, and the tuple-vs-binary size ratio.

``explain FILE.mj``
    Print what the static phases decided: the static datarace set,
    eliminated trace sites, peeled loops.

``tables``
    Regenerate the paper's Tables 1/2/3 (``--scale`` and ``--repeats``
    control cost).

``serve``
    The race-detection HTTP daemon: POST MJ programs or recorded event
    logs (tuple JSON / MJBL, classified by magic bytes) and get the
    same machine-readable race report ``check --report-json`` prints.
    ``--workers`` bounds the detection process pool, ``--queue-depth``
    the pending queue (full → 429 + Retry-After), ``--timeout`` the
    per-job wall-clock budget; SIGTERM drains in-flight jobs before
    exit.  See ``docs/service.md``.

``difflab``
    The differential race-oracle lab: verify the committed reproducer
    corpus (``tests/corpus/``), then fuzz a campaign of
    (program, schedule) cases through the whole detector battery,
    classify every discrepancy against the expectation matrix, and
    shrink any violation into a minimal counterexample.  ``--budget
    120s`` keeps fuzzing until time is up; ``--inject NAME`` swaps in a
    deliberately broken detector to prove the lab catches it; ``--out``
    chooses where shrunk violations land.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .detector import DeadlockDetector, DetectorConfig, RaceDetector
from .instrument import PlannerConfig, plan_instrumentation
from .lang import MJError, compile_source
from .runtime import (
    DEFAULT_ENGINE,
    DEFAULT_TIERING,
    ENGINES,
    MulticastSink,
    RandomPolicy,
    RoundRobinPolicy,
    TIERING_MODES,
    engine_runner,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Datarace detection for MJ programs "
        "(PLDI 2002 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="detect dataraces in a program")
    check.add_argument("file", type=Path, nargs="?", default=None,
                       help="MJ program (optional with --from-log: when "
                       "given, reports carry source descriptors and "
                       "static-partner context)")
    check.add_argument("--engine", choices=sorted(ENGINES),
                       default=DEFAULT_ENGINE,
                       help="execution engine: the AST interpreter or the "
                       "closure-compiled backend (default: %(default)s)")
    check.add_argument("--tiering", choices=TIERING_MODES, default=None,
                       help="compiled-engine instrumentation tiering: "
                       "inline ownership fast paths plus elision of "
                       "provably thread-local accesses; race reports "
                       "stay byte-identical (default: REPRO_TIERING, "
                       f"currently {DEFAULT_TIERING!r})")
    check.add_argument("--seed", type=int, default=None,
                       help="random-scheduler seed (default: round-robin)")
    check.add_argument("--no-static", action="store_true",
                       help="skip static datarace analysis")
    check.add_argument("--no-weaker", action="store_true",
                       help="skip static weaker-than elimination")
    check.add_argument("--no-peeling", action="store_true",
                       help="skip loop peeling")
    check.add_argument("--no-cache", action="store_true",
                       help="disable the runtime access caches")
    check.add_argument("--no-ownership", action="store_true",
                       help="disable the ownership model")
    check.add_argument("--fields-merged", action="store_true",
                       help="object-granularity locations (Table 3 variant)")
    check.add_argument("--deadlocks", action="store_true",
                       help="also run lock-order deadlock analysis")
    check.add_argument("--stats", action="store_true",
                       help="print the event funnel and cache stats")
    check.add_argument("--phase-times", action="store_true",
                       help="print a per-phase wall-clock breakdown "
                       "(interpret / filter / cache / lockset-trie); "
                       "on-the-fly detection only")
    check.add_argument("--post-mortem", action="store_true",
                       help="record the event stream, then detect offline")
    check.add_argument("--from-log", type=Path, default=None, metavar="PATH",
                       help="skip execution and detect over a recorded "
                       "log (tuple JSON or MJBL binary, auto-detected "
                       "by magic bytes; implies --post-mortem)")
    check.add_argument("--shards", type=int, default=None, metavar="N",
                       help="sharded post-mortem detection over N "
                       "partitions (implies --post-mortem)")
    check.add_argument("--predict", choices=("shb", "hybrid"), default=None,
                       help="also run the predictive pass over the "
                       "recorded trace: races realizable in schedulable "
                       "reorderings, not just the observed interleaving "
                       "(implies --post-mortem; see docs/prediction.md)")
    check.add_argument("--executor", choices=("serial", "thread", "process"),
                       default="serial",
                       help="how sharded detection runs (default: serial)")
    check.add_argument("--report-json", action="store_true",
                       help="print one canonical machine-readable JSON "
                       "report instead of the human-readable lines "
                       "(byte-identical to the report object a "
                       "`repro serve` job returns for the same input)")

    run = sub.add_parser("run", help="execute a program (no detection)")
    run.add_argument("file", type=Path)
    run.add_argument("--engine", choices=sorted(ENGINES),
                     default=DEFAULT_ENGINE,
                     help="execution engine (default: %(default)s)")
    run.add_argument("--tiering", choices=TIERING_MODES, default=None,
                     help="compiled-engine instrumentation tiering "
                     "(inert without a detector sink; default: "
                     f"REPRO_TIERING, currently {DEFAULT_TIERING!r})")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--record", type=Path, default=None, metavar="PATH",
                     help="record the event stream to a JSON tuple log")
    run.add_argument("--record-binary", type=Path, default=None,
                     metavar="PATH",
                     help="record the event stream to an MJBL binary log "
                     "(streaming, bounded memory)")
    run.add_argument("--compress", type=int, nargs="?", const=6,
                     default=None, metavar="LEVEL",
                     help="deflate the binary log's record blocks (MJBL "
                     "v2; zlib level 0-9, default 6 when the flag is "
                     "given bare; requires --record-binary)")

    log_stats = sub.add_parser(
        "log-stats", help="summarize a recorded event log (either format)"
    )
    log_stats.add_argument("file", type=Path,
                           help="tuple JSON or MJBL binary log")
    log_stats.add_argument("--verify", action="store_true",
                           help="also CRC-check a binary log's record "
                           "region (O(n))")

    synthlog = sub.add_parser(
        "synthlog",
        help="write a deterministic synthetic MJBL log (benchmarks, "
        "format experiments)",
    )
    synthlog.add_argument("out", type=Path, help="output .mjbl path")
    synthlog.add_argument("--events", type=int, default=100_000)
    synthlog.add_argument("--seed", type=int, default=2002)
    synthlog.add_argument("--threads", type=int, default=8)
    synthlog.add_argument("--objects", type=int, default=4096)
    synthlog.add_argument("--records-per-block", type=int, default=None,
                          metavar="N",
                          help="index block granularity (default: "
                          "writer default)")
    synthlog.add_argument("--compress", type=int, nargs="?", const=6,
                          default=None, metavar="LEVEL",
                          help="deflate record blocks (MJBL v2; zlib "
                          "level 0-9, default 6 when given bare)")

    explain = sub.add_parser(
        "explain", help="show the static phases' decisions"
    )
    explain.add_argument("file", type=Path)

    tables = sub.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("--scale", type=int, default=4)
    tables.add_argument("--repeats", type=int, default=1)
    tables.add_argument("--output", type=Path, default=None,
                        help="write a markdown report instead of printing")

    serve = sub.add_parser(
        "serve",
        help="run the race-detection HTTP daemon (see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port; 0 picks a free port and prints it "
                       "(default: %(default)s)")
    serve.add_argument("--workers", type=int, default=2,
                       help="detection worker processes (default: "
                       "%(default)s)")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="pending-job queue bound; a full queue "
                       "answers 429 + Retry-After (default: %(default)s)")
    serve.add_argument("--timeout", type=float, default=30.0,
                       help="per-job wall-clock budget in seconds; an "
                       "overrunning job is killed and reported as "
                       "`timeout` (default: %(default)s)")
    serve.add_argument("--engine", choices=sorted(ENGINES),
                       default=DEFAULT_ENGINE,
                       help="execution engine the detection workers run "
                       "programs under (default: %(default)s)")
    serve.add_argument("--tiering", choices=TIERING_MODES, default=None,
                       help="compiled-engine tiering for worker program "
                       "runs; reports stay byte-identical (default: "
                       f"REPRO_TIERING, currently {DEFAULT_TIERING!r})")

    difflab = sub.add_parser(
        "difflab",
        help="differential race-oracle lab (corpus check + fuzz campaign)",
    )
    difflab.add_argument("--engine", choices=sorted(ENGINES),
                         default=DEFAULT_ENGINE,
                         help="execution engine for corpus + campaign runs; "
                         "a non-ast engine is differentially checked "
                         "against the ast reference on every case "
                         "(default: %(default)s)")
    difflab.add_argument("--tiering", choices=TIERING_MODES, default=None,
                         help="compiled-engine tiering for corpus + "
                         "campaign runs; with tiering on every case is "
                         "additionally cross-checked against an untired "
                         "rerun — any verdict difference is a hard "
                         "divergence (default: REPRO_TIERING, currently "
                         f"{DEFAULT_TIERING!r})")
    difflab.add_argument("--budget", default=None, metavar="TIME",
                         help='campaign time budget, e.g. "120s" or "2m" '
                         "(keeps drawing fuzz seeds until time is up)")
    difflab.add_argument("--programs", type=int, default=12,
                         help="fuzz program seeds without a budget "
                         "(0 skips the campaign; default: 12)")
    difflab.add_argument("--schedules", type=int, default=3,
                         help="schedules per program: round-robin plus "
                         "seeded random (default: 3)")
    difflab.add_argument("--seed0", type=int, default=0,
                         help="first fuzz program seed (default: 0)")
    difflab.add_argument("--corpus", type=Path, default=None, metavar="DIR",
                         help="reproducer corpus directory "
                         "(default: tests/corpus)")
    difflab.add_argument("--skip-corpus", action="store_true",
                         help="skip the committed-corpus verification phase")
    difflab.add_argument("--inject", default=None, metavar="NAME",
                         help="swap in a deliberately broken detector "
                         "(lab self-test); see --list-injections")
    difflab.add_argument("--list-injections", action="store_true",
                         help="list the available injected bugs and exit")
    difflab.add_argument("--no-shrink", action="store_true",
                         help="report violations without minimizing them")
    difflab.add_argument("--predict", choices=("shb", "hybrid"), default=None,
                         help="hunt the predictive discrepancy classes: "
                         "shrink the first case exhibiting "
                         "predicted-not-observed (and, with hybrid, "
                         "lockset-fp-refuted) into a reproducer with a "
                         "synthesized witness schedule, written to --out")
    difflab.add_argument("--sync-vocab", action="store_true",
                         help="fuzz with the wait/notify/barrier "
                         "vocabulary enabled")
    difflab.add_argument("--handoff-bias", action="store_true",
                         help="fuzz with condition-handoff-biased "
                         "programs (implies --sync-vocab)")
    difflab.add_argument("--out", type=Path, default=Path("difflab-out"),
                         metavar="DIR",
                         help="where shrunk violation reproducers are "
                         "written (default: ./difflab-out)")
    return parser


def _policy(seed):
    return RandomPolicy(seed) if seed is not None else RoundRobinPolicy()


def _tiering_usage_error(args) -> bool:
    """Explicit ``--tiering on`` needs the compiled engine.

    The env default (``REPRO_TIERING=on``) stays inert on the AST
    engine so the whole suite can run under one environment; asking for
    it explicitly on a run that cannot honor it is a usage error.
    """
    if args.tiering == "on" and args.engine == "ast":
        print("error: --tiering on requires --engine compiled "
              "(the AST interpreter has no tiered stubs)",
              file=sys.stderr)
        return True
    return False


def _compile(path: Path):
    try:
        source = path.read_text()
    except OSError as error:
        raise MJError(f"cannot read {path}: {error}") from error
    return compile_source(source, filename=str(path))


def cmd_check(args) -> int:
    if args.file is None and args.from_log is None:
        print("error: check needs an MJ program, a --from-log PATH, "
              "or both", file=sys.stderr)
        return 2
    if _tiering_usage_error(args):
        return 2
    resolved = _compile(args.file) if args.file is not None else None
    planner = PlannerConfig(
        static_analysis=not args.no_static,
        static_weaker=not args.no_weaker,
        loop_peeling=not args.no_peeling,
    )
    plan = (
        plan_instrumentation(resolved, planner) if resolved is not None else None
    )
    detector_config = DetectorConfig(
        cache=not args.no_cache,
        ownership=not args.no_ownership,
        fields_merged=args.fields_merged,
    )
    post_mortem = (
        args.post_mortem
        or args.shards is not None
        or args.from_log is not None
        or args.predict is not None
    )
    shards = args.shards if args.shards is not None else 1
    if shards < 1:
        print("error: --shards must be positive", file=sys.stderr)
        return 2
    if args.phase_times and post_mortem:
        print("error: --phase-times needs on-the-fly detection "
              "(drop --post-mortem/--shards/--from-log)", file=sys.stderr)
        return 2
    if args.report_json and (args.deadlocks or args.predict or
                             args.phase_times):
        print("error: --report-json covers the race report only "
              "(drop --deadlocks/--predict/--phase-times)",
              file=sys.stderr)
        return 2

    sharded = None
    deadlocks = None
    result = None
    predictor = None
    predicted = set()
    observed = set()
    tier_counters = None
    if post_mortem:
        from .detector import detect_sharded
        from .runtime import RecordingSink, open_log, replay_entries
        from .runtime.binlog import as_log_entries

        if args.from_log is not None:
            # Detect over a pre-recorded log, auto-detected by magic
            # bytes; open_log is the single validation point (binary
            # logs validate structurally, tuple logs pay one
            # validate_entries pass).
            log = open_log(args.from_log)
            if args.deadlocks:
                deadlocks = DeadlockDetector()
                replay_entries(as_log_entries(log), deadlocks)
        else:
            log = RecordingSink()
            sink = log
            if args.deadlocks:
                deadlocks = DeadlockDetector()
                sink = MulticastSink([log, deadlocks])
            result = engine_runner(args.engine)(
                resolved,
                sink=sink,
                trace_sites=plan.trace_sites,
                policy=_policy(args.seed),
                tiering=args.tiering,
            )
        sharded = detect_sharded(
            log,
            shards,
            config=detector_config,
            resolved=resolved,
            static_races=plan.static_races if plan is not None else None,
            executor=args.executor,
            validate=False,  # recorded in-process or validated by open_log
        )
        reports = sharded.reports.reports
        funnel = sharded.stats
        cache_stats = sharded.cache_stats
        if args.predict is not None:
            from .baselines import HappensBeforeDetector
            from .detector.predict import predict_races

            predictor = predict_races(log, args.predict, validate=False)
            observed_hb = HappensBeforeDetector()
            replay_entries(as_log_entries(log), observed_hb)
            predicted = {
                str(location) for location in predictor.racy_locations
            }
            observed = {
                str(location) for location in observed_hb.racy_locations
            }
    else:
        detector_class = RaceDetector
        if args.phase_times:
            from .harness import TimedRaceDetector

            detector_class = TimedRaceDetector
        detector = detector_class(
            config=detector_config,
            resolved=resolved,
            static_races=plan.static_races,
        )
        sink = detector
        if args.deadlocks:
            deadlocks = DeadlockDetector()
            sink = MulticastSink([detector, deadlocks])
        started = time.perf_counter()
        result = engine_runner(args.engine)(
            resolved,
            sink=sink,
            trace_sites=plan.trace_sites,
            policy=_policy(args.seed),
            tiering=args.tiering,
        )
        wall_seconds = time.perf_counter() - started
        reports = detector.reports.reports
        funnel = detector.stats
        cache_stats = detector.cache.stats if detector.cache else None
        tier_counters = detector.tiering
    if args.report_json:
        from .service.protocol import canonical_json, detection_report

        # The same builder + canonical encoding the daemon uses — the
        # CLI-vs-service byte-identity contract lives right here.
        print(canonical_json(detection_report(
            reports,
            funnel,
            cache_stats,
            output=result.output if result is not None else (),
        )))
        return 1 if reports else 0
    if result is not None:
        for line in result.output:
            print(f"[program] {line}")
    if reports:
        for report in reports:
            print(report.describe())
    else:
        print("no dataraces detected")
    if predictor is not None:
        if predicted:
            for location in sorted(predicted):
                marker = (
                    "also observed"
                    if location in observed
                    else "predicted only — not observed in this interleaving"
                )
                print(f"[{args.predict}] predicted race on {location} "
                      f"({marker})")
        else:
            print(f"[{args.predict}] no races predicted in reorderings "
                  f"of this trace")
    if deadlocks is not None:
        if deadlocks.reports:
            for report in deadlocks.reports:
                print(report.describe())
        else:
            print("no potential deadlocks detected (dynamic)")
        if resolved is not None:
            from .analysis import analyze_static_deadlocks

            static_reports = analyze_static_deadlocks(resolved)
            if static_reports:
                for report in static_reports:
                    print(report.describe())
            else:
                print("no potential deadlocks detected (static)")
    if args.stats:
        if plan is not None:
            print(f"instrumented sites: {plan.stats.sites_instrumented} of "
                  f"{plan.stats.sites_total} "
                  f"(+{plan.stats.sites_cloned_by_peeling} peeled clones, "
                  f"-{plan.stats.sites_eliminated_weaker} statically weaker)")
        print(f"funnel: {funnel.funnel()}")
        if cache_stats is not None:
            print(f"cache hit rate: {cache_stats.hit_rate:.1%}")
        if tier_counters is not None:
            print(f"tiering: {_tiering_line(tier_counters)}")
        if sharded is not None:
            print(f"post-mortem: {sharded.shard_summary()}")
            print(f"  accesses partitioned: {sharded.partitioned_accesses}; "
                  f"monitored locations (merged): "
                  f"{sharded.monitored_locations}; "
                  f"trie nodes (merged): {sharded.trie_nodes}")
    if args.phase_times:
        phases = detector.phase_seconds(wall_seconds)
        denom = wall_seconds or 1e-12
        print(f"phase times (wall {wall_seconds:.3f}s, {args.engine} engine):")
        for name, seconds in phases.items():
            label = name.replace("lockset_trie", "lockset/trie")
            print(f"  {label:<12} {seconds:.3f}s "
                  f"({100.0 * seconds / denom:.0f}%)")
        if tier_counters is not None:
            print(f"  tiering: {_tiering_line(tier_counters)}")
            print("  (tier-0 fast-path time runs outside the sink and is "
                  "attributed to interpret)")
    return 1 if reports or predicted else 0


def _tiering_line(counters) -> str:
    """One human-readable line of tier-transition counters."""
    settled = (
        f"settled (survivor thread {counters.survivor})"
        if counters.settled
        else "not settled"
    )
    return (
        f"sites tier0={counters.sites_tier0} "
        f"tier1-static={counters.sites_tier1_static}; "
        f"inline owned={counters.inline_owned} "
        f"cache-hits={counters.inline_cache_hits}; "
        f"elided static={counters.elided_static} "
        f"settled={counters.elided_settled}; {settled}"
    )


def cmd_run(args) -> int:
    if _tiering_usage_error(args):
        return 2
    if args.compress is not None and args.record_binary is None:
        print("error: --compress requires --record-binary", file=sys.stderr)
        return 2
    if args.compress is not None and not 0 <= args.compress <= 9:
        print("error: --compress level must be 0-9", file=sys.stderr)
        return 2
    resolved = _compile(args.file)
    sinks = []
    binary_sink = None
    tuple_sink = None
    if args.record_binary is not None:
        from .runtime import BinaryLogSink

        binary_sink = BinaryLogSink(args.record_binary, compress=args.compress)
        sinks.append(binary_sink)
    if args.record is not None:
        from .runtime import RecordingSink

        tuple_sink = RecordingSink()
        sinks.append(tuple_sink)
    sink = None
    if len(sinks) == 1:
        sink = sinks[0]
    elif sinks:
        sink = MulticastSink(sinks)
    result = engine_runner(args.engine)(
        resolved, sink=sink, policy=_policy(args.seed), tiering=args.tiering
    )
    for line in result.output:
        print(line)
    if binary_sink is not None:
        binary_sink.close()  # idempotent; the engine's run-end already closed
        flavor = (
            "binary"
            if args.compress is None
            else f"binary v2, deflate level {args.compress}"
        )
        print(f"[recorded] {binary_sink.record_count} events -> "
              f"{args.record_binary} ({args.record_binary.stat().st_size} "
              f"bytes, {flavor})", file=sys.stderr)
    if tuple_sink is not None:
        import json

        from .runtime import dump_log

        args.record.write_text(json.dumps(dump_log(tuple_sink)) + "\n")
        print(f"[recorded] {len(tuple_sink.log)} events -> {args.record} "
              f"({args.record.stat().st_size} bytes, tuple JSON)",
              file=sys.stderr)
    return 0


def cmd_log_stats(args) -> int:
    from .runtime import BinaryLogReader, open_log
    from .runtime.binlog import collect_log_stats, tuple_log_json_bytes

    log = open_log(args.file)
    on_disk = args.file.stat().st_size
    if isinstance(log, BinaryLogReader):
        if args.verify:
            log.verify()
            print("crc: ok")
        stats = log.stats()
        binary_bytes = on_disk
        tuple_bytes = tuple_log_json_bytes(log.entries())
        block_stats = log.block_stats()
        print(f"format: binary (MJBL v{log.version}, "
              f"{block_stats['blocks']} index blocks, "
              f"{len(log.strings)} interned strings)")
        print(f"block fill: mean {block_stats['mean_fill']:.2%} "
              f"(min {block_stats['min_fill']:.2%}, "
              f"max {block_stats['max_fill']:.2%}) of "
              f"{block_stats['records_per_block']} records/block")
        if block_stats["compressed_blocks"]:
            print(f"compression: {block_stats['compressed_blocks']}/"
                  f"{block_stats['blocks']} blocks deflated, "
                  f"{block_stats['compression_ratio']:.2f}x record-region "
                  f"ratio ({block_stats['raw_record_bytes']} raw -> "
                  f"{block_stats['stored_record_bytes']} stored)")
    else:
        stats = collect_log_stats(log)
        tuple_bytes = on_disk
        # What the same stream costs as MJBL: record widths + header +
        # string table + index, without writing anything.
        from .runtime import RecordingSink
        from .runtime.binlog import estimate_binary_bytes

        binary_bytes = estimate_binary_bytes(log)
        print(f"format: tuple JSON (schema v{RecordingSink.SCHEMA_VERSION})")
    events = stats["events"]
    print(f"events: {events}")
    for tag in ("access", "enter", "exit", "start", "end", "join", "wait",
                "notify"):
        count = stats["counts"].get(tag, 0)
        if count:
            print(f"  {tag:<8} {count}")
    print(f"  reads/writes: {stats['reads']}/{stats['writes']}")
    print(f"distinct locations: {stats['distinct_locations']}")
    print(f"distinct threads:   {stats['distinct_threads']}")
    print(f"distinct locks:     {stats['distinct_locks']}")
    print(f"distinct conditions:{stats['distinct_conditions']:>5}")
    if events:
        print(f"bytes/event: {on_disk / events:.1f} on disk")
    print(f"tuple JSON bytes:  {tuple_bytes}")
    print(f"binary MJBL bytes: {binary_bytes}")
    if binary_bytes:
        print(f"tuple/binary size ratio: {tuple_bytes / binary_bytes:.2f}x")
    return 0


def cmd_synthlog(args) -> int:
    if args.compress is not None and not 0 <= args.compress <= 9:
        print("error: --compress level must be 0-9", file=sys.stderr)
        return 2
    if args.events <= 0:
        print("error: --events must be positive", file=sys.stderr)
        return 2
    from .runtime.synthlog import synthesize_file

    try:
        count = synthesize_file(
            args.out,
            args.events,
            compress=args.compress,
            records_per_block=args.records_per_block,
            threads=args.threads,
            objects=args.objects,
            seed=args.seed,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    size = args.out.stat().st_size
    flavor = (
        "MJBL v1"
        if args.compress is None
        else f"MJBL v2, deflate level {args.compress}"
    )
    print(f"[synthlog] {count} events -> {args.out} ({size} bytes, "
          f"{size / count:.1f} bytes/event, {flavor})", file=sys.stderr)
    return 0


def cmd_explain(args) -> int:
    resolved = _compile(args.file)
    plan = plan_instrumentation(resolved, PlannerConfig())
    races = plan.static_races
    print(f"access sites:            {plan.stats.sites_total}")
    print(f"static datarace set:     {races.stats.sites_racy} sites")
    print(f"  pairs checked:         {races.stats.pairs_checked}")
    print(f"  pruned (escape):       {races.stats.pairs_pruned_escape}")
    print(f"  pruned (same thread):  {races.stats.pairs_pruned_same_thread}")
    print(f"  pruned (common sync):  {races.stats.pairs_pruned_common_sync}")
    print(f"loops peeled:            {plan.stats.loops_peeled}")
    print(f"statically weaker sites: {plan.stats.sites_eliminated_weaker}")
    print(f"instrumented:            {plan.stats.sites_instrumented}")
    print("\ninstrumented sites:")
    for site_id in sorted(plan.trace_sites):
        print(f"  {resolved.sites[site_id].descriptor}")
    if plan.eliminations:
        print("\neliminated (justified by a weaker site):")
        for gone, justifier in sorted(plan.eliminations.items()):
            print(f"  {resolved.sites[gone].descriptor}")
            print(f"    <= {resolved.sites[justifier].descriptor}")
    return 0


def cmd_tables(args) -> int:
    from .harness import table1, table2, table2_events, table3

    if args.output is not None:
        from .harness import write_report

        target = write_report(
            args.output, scale=args.scale, repeats=args.repeats
        )
        print(f"wrote {target}")
        return 0
    from .workloads import BENCHMARKS, TABLE2_BENCHMARKS

    print("TABLE 1")
    print(table1(list(BENCHMARKS.values()), scale=args.scale))
    print("\nTABLE 2")
    rendered, raw = table2(
        list(TABLE2_BENCHMARKS.values()),
        scale=args.scale,
        repeats=args.repeats,
    )
    print(rendered)
    print("\nTABLE 2 (events)")
    print(table2_events(raw))
    print("\nTABLE 3")
    rendered3, _ = table3(list(BENCHMARKS.values()), scale=args.scale)
    print(rendered3)
    return 0


def _parse_budget(text):
    """``"120s"`` / ``"2m"`` / ``"90"`` → seconds (float)."""
    text = text.strip().lower()
    factor = 1.0
    if text.endswith("ms"):
        factor, text = 0.001, text[:-2]
    elif text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        factor, text = 60.0, text[:-1]
    elif text.endswith("h"):
        factor, text = 3600.0, text[:-1]
    try:
        value = float(text) * factor
    except ValueError:
        raise MJError(f"cannot parse budget {text!r} (try '120s' or '2m')")
    if value <= 0:
        raise MJError("budget must be positive")
    return value


def cmd_difflab(args) -> int:
    import json

    from .difflab import (
        DEFAULT_CORPUS,
        INJECTIONS,
        run_campaign,
        verify_corpus,
    )

    if args.list_injections:
        for name, injection in sorted(INJECTIONS.items()):
            print(f"{name}: {injection.description}")
        return 0
    if _tiering_usage_error(args):
        return 2
    injection = None
    if args.inject is not None:
        injection = INJECTIONS.get(args.inject)
        if injection is None:
            print(f"error: unknown injection {args.inject!r} "
                  f"(have: {', '.join(sorted(INJECTIONS))})", file=sys.stderr)
            return 2

    failed = False

    if not args.skip_corpus:
        directory = args.corpus if args.corpus is not None else DEFAULT_CORPUS
        entries, problems = verify_corpus(
            directory, engine=args.engine, tiering=args.tiering
        )
        covered = sorted({klass for e in entries for klass in e.classes})
        print(f"corpus: {len(entries)} entries from {directory}")
        for entry in entries:
            classes = ", ".join(entry.classes) if entry.classes else "-"
            print(f"  {entry.name} [{entry.fingerprint}] "
                  f"schedule={entry.schedule.describe()} classes={classes}")
        if problems:
            failed = True
            for problem in problems:
                print(f"  CORPUS PROBLEM {problem}")
        else:
            print(f"corpus: zero violations; expected classes reproduced: "
                  f"{', '.join(covered)}")

    fuzzer_kwargs = {}
    if args.handoff_bias:
        fuzzer_kwargs["handoff_bias"] = True
    elif args.sync_vocab:
        fuzzer_kwargs["sync_vocab"] = True

    hunt_classes = None
    if args.predict == "shb":
        hunt_classes = frozenset({"predicted-not-observed"})
    elif args.predict == "hybrid":
        hunt_classes = frozenset(
            {"predicted-not-observed", "lockset-fp-refuted"}
        )

    budget = _parse_budget(args.budget) if args.budget is not None else None
    if budget is not None or args.programs > 0:
        result = run_campaign(
            programs=args.programs,
            schedules=args.schedules,
            budget=budget,
            seed0=args.seed0,
            fuzzer_kwargs=fuzzer_kwargs or None,
            detector_factory=injection.factory if injection else None,
            config=injection.config if injection else None,
            shrink=not args.no_shrink,
            progress=lambda message: print(f"  .. {message}"),
            engine=args.engine,
            tiering=args.tiering,
            hunt_classes=hunt_classes,
        )
        print(result.summary())
        if result.finds:
            args.out.mkdir(parents=True, exist_ok=True)
            for find in result.finds:
                stem = args.out / f"find-{find.klass}-{find.fingerprint}"
                stem.with_suffix(".mj").write_text(find.source)
                stem.with_suffix(".json").write_text(json.dumps({
                    "fingerprint": find.fingerprint,
                    "class": find.klass,
                    "schedule": find.schedule.to_json(),
                    "original_label": find.original_label,
                    "shrink": find.stats.describe(),
                    "items": list(find.items),
                    "witness": find.witness,
                }, indent=2) + "\n")
                print(f"wrote {stem.with_suffix('.mj')}")
        if result.violations:
            failed = True
            args.out.mkdir(parents=True, exist_ok=True)
            for violation in result.violations:
                stem = args.out / violation.fingerprint
                stem.with_suffix(".mj").write_text(violation.source)
                stem.with_suffix(".json").write_text(json.dumps({
                    "fingerprint": violation.fingerprint,
                    "classes": list(violation.classes),
                    "schedule": violation.schedule.to_json(),
                    "original_label": violation.original_label,
                    "shrink": violation.stats.describe(),
                    "discrepancies": [
                        d.describe() for d in violation.discrepancies
                    ],
                }, indent=2) + "\n")
                print(f"wrote {stem.with_suffix('.mj')}")
        if result.errors:
            failed = True
    return 1 if failed else 0


def cmd_serve(args) -> int:
    from .service import ServeConfig, serve_forever

    if args.workers < 1:
        print("error: --workers must be positive", file=sys.stderr)
        return 2
    if args.queue_depth < 1:
        print("error: --queue-depth must be positive", file=sys.stderr)
        return 2
    if args.timeout <= 0:
        print("error: --timeout must be positive", file=sys.stderr)
        return 2
    if _tiering_usage_error(args):
        return 2
    return serve_forever(ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        timeout=args.timeout,
        engine=args.engine,
        tiering=args.tiering,
    ))


def main(argv=None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "check": cmd_check,
        "run": cmd_run,
        "log-stats": cmd_log_stats,
        "synthlog": cmd_synthlog,
        "explain": cmd_explain,
        "tables": cmd_tables,
        "serve": cmd_serve,
        "difflab": cmd_difflab,
    }
    from .runtime import (
        LogCorruptError,
        LogNotFoundError,
        LogSchemaError,
        LogSchemaMismatchError,
    )

    # The log-error taxonomy maps to distinct exit codes so scripts can
    # branch without parsing messages: 2 = not found (or any usage /
    # compile error), 3 = corrupt or truncated (the message carries the
    # byte offset of the first damage), 4 = schema mismatch (intact
    # bytes, wrong recording schema).  ``repro serve`` maps the same
    # classes to 404 / 422 / 400.
    try:
        return handlers[args.command](args)
    except LogNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except LogCorruptError as error:
        print(f"error: corrupt event log: {error}", file=sys.stderr)
        return 3
    except LogSchemaMismatchError as error:
        print(f"error: event-log schema mismatch: {error}", file=sys.stderr)
        return 4
    except (MJError, LogSchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
