"""AST → closure-threaded code: the MJ compilation backend.

The tree-walking interpreter (:mod:`repro.runtime.interpreter`) pays a
per-*execution* price for work that is a pure function of the program
text: node-type dispatch, local-variable dict probes, method resolution,
operator decoding, and — critically — the per-access decision of whether
a site is traced.  This module pays all of those costs once, at compile
time, by lowering every resolved AST node into a Python closure with its
operands pre-bound:

* locals live in a flat frame *list* at slot indices assigned per
  method (dict probes become list indexing);
* method targets are resolved ahead of time — static calls bind the
  compiled callee directly (arity checked at compile time), instance
  calls go through per-class method tables built once;
* operators compile to specialized combiner closures (no string
  comparison chains at runtime);
* every access site gets a *statically specialized trace stub*: a site
  in the instrumentation plan compiles to a closure that has the sink's
  ``on_access_parts``, the interned label cache, the constant field
  name, site id and access kind already captured, while a site outside
  the plan (eliminated by the static race set, Section 6.1's omitted
  ``trace`` pseudo-instruction) compiles to a plain load/store whose
  only residue is the ``accesses_executed`` counter.

Scheduling parity is the load-bearing invariant.  The scheduler charges
one step per ``yield`` reaching it through the generator stack, and the
AST interpreter yields only at real preemption points (before each
memory access, at monitor operations, thread start/join/wait/barrier,
and loop back-edges).  Pure subtrees — literals, locals, arithmetic —
never yield, so they compile to *plain* closures ``f(frame) -> value``
called directly.  Any subtree containing a preemption point compiles to
a *generator* closure ``g(frame, thread)`` that yields at exactly the
same points the interpreter does.  Every compilation routine therefore
returns a ``(is_gen, closure)`` pair and callers splice pure operands
in as direct calls.  The result: identical scheduler decision
sequences, identical event streams, byte for byte.

Beyond per-node closures, three *fusions* flatten the generator stack
the scheduler must traverse on every step (the AST engine's dominant
hidden cost — each live ``yield from`` level taxes every resume):

1. statement lists are executed by an inline loop in the enclosing
   closure (method body, ``if`` arm, ``while`` body, ``sync`` body)
   instead of a dedicated block generator;
2. calls inline the callee prologue — arity check, frame allocation,
   ``return`` unwinding — into the call-site closure, so one call costs
   one generator frame, not interpreter's invoke/block/statement stack;
3. value-producing generator closures accept a compile-time
   *destination* (an assignment's frame slot, or ``return``), so
   ``x = a[i] + this.f`` runs in a single generator frame end to end.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.errors import MJAssertionError, MJError, MJRuntimeError
from ..lang.resolver import ARRAY_FIELD
from .interpreter import _Return
from .scheduler import ThreadStatus
from .values import MJArray, MJClassObject, MJObject, Reference, mj_repr

#: Sentinel stored in unassigned frame slots so reads of
#: not-yet-bound locals raise the same error the AST interpreter does.
_UNBOUND = object()

#: Destination markers for gen-expression templates (fusion 3).  A
#: non-negative int destination means "store into that frame slot";
#: ``_DEST_VALUE`` means "return the value to the consuming closure";
#: ``_DEST_RETURN`` means "raise _Return(value)" (a return statement).
_DEST_VALUE = None
_DEST_RETURN = -1


class MethodEntry:
    """Everything a call site needs to enter a compiled method."""

    __slots__ = ("nparams", "nslots", "body_cell", "qname", "location")

    def __init__(self, nparams, nslots, body_cell, qname, location):
        self.nparams = nparams
        self.nslots = nslots
        #: One-element list filled with the body's statement items once
        #: the body is compiled (two-phase, for mutual recursion).
        self.body_cell = body_cell
        self.qname = qname
        self.location = location


def invoke_entry(entry: MethodEntry, this, args, thread):
    """Generic (cold-path) invocation of a compiled method: used for
    ``main`` and thread ``run`` bodies; hot call sites inline this."""
    nparams = entry.nparams
    if len(args) != nparams:
        raise MJRuntimeError(
            f"{entry.qname} expects {nparams} argument(s), got {len(args)}",
            entry.location,
        )
    frame = [_UNBOUND] * entry.nslots
    frame[0] = this
    if nparams:
        frame[1 : nparams + 1] = args
    try:
        for is_gen, fn in entry.body_cell[0]:
            if is_gen:
                yield from fn(frame, thread)
            else:
                fn(frame)
    except _Return as signal:
        return signal.value
    return None


class CompiledProgram:
    """The output of compilation: entry point + per-class method tables."""

    __slots__ = ("main_entry", "vtables")

    def __init__(self, main_entry, vtables):
        #: Compiled ``Main.main`` — drive with :func:`invoke_entry`.
        self.main_entry = main_entry
        #: class name -> {method name -> MethodEntry} for instance
        #: dispatch; statics are deliberately absent (calling one
        #: through an instance raises like the interpreter).
        self.vtables = vtables


def _collect_slots(method: ast.MethodDecl) -> dict:
    """Assign a frame slot to every name the method can bind.

    Slot 0 is reserved for ``this``; parameters take 1..n in order;
    every ``var``-declared or assigned name after that.  MJ locals are
    method-scoped (the interpreter keeps one flat dict per frame), so a
    flat slot map is exact.  A duplicate parameter name keeps only its
    last slot live, matching ``dict(zip(params, args))``.
    """
    slots: dict = {}
    for index, param in enumerate(method.params):
        slots[param] = index + 1
    next_slot = len(method.params) + 1
    for node in method.body.walk():
        node_type = type(node)
        if node_type is ast.VarDecl or node_type is ast.AssignLocal:
            if node.name not in slots:
                slots[node.name] = next_slot
                next_slot += 1
    return slots


def _noop(frame):
    return None


class ProgramCompiler:
    """Lowers one resolved program for one engine instance.

    Compilation closes over the engine's mutable runtime state (uid
    allocator, sink, label cache, counters), so a compiled program is
    engine-private.  Compilation is a single cheap AST walk and happens
    at engine construction — outside any timed region, matching how the
    harness excludes compile time.
    """

    def __init__(self, engine):
        self.engine = engine
        self.resolved = engine._resolved
        #: id(MethodDecl) -> MethodEntry (created before body compile).
        self._entries: dict = {}
        #: Methods whose bodies still need compiling.
        self._pending: list = []
        #: class name -> {method name -> MethodEntry}; populated at the
        #: end but captured (as an object) by call closures earlier.
        self.vtables: dict = {}

    # ------------------------------------------------------------------
    # Driver.

    def compile(self) -> CompiledProgram:
        resolved = self.resolved
        for method in resolved.methods:
            self._entry(method)
        main_entry = self._entry(resolved.main_method)
        self._drain()
        for name, info in resolved.classes.items():
            table: dict = {}
            for ancestor in info.ancestors():
                for method_name in ancestor.own_methods:
                    if method_name in table:
                        continue
                    decl = info.resolve_method(method_name)
                    if decl is not None and not decl.is_static:
                        table[method_name] = self._entry(decl)
            self.vtables[name] = table
        self._drain()
        return CompiledProgram(main_entry=main_entry, vtables=self.vtables)

    def _drain(self) -> None:
        while self._pending:
            method, slots, body_cell = self._pending.pop()
            body_cell[0] = self._stmt_items(method.body.body, slots)

    def _entry(self, method: ast.MethodDecl) -> MethodEntry:
        key = id(method)
        entry = self._entries.get(key)
        if entry is None:
            slots = _collect_slots(method)
            body_cell = [()]
            entry = MethodEntry(
                nparams=len(method.params),
                nslots=len(slots) + 1,
                body_cell=body_cell,
                qname=method.qualified_name,
                location=method.location,
            )
            self._entries[key] = entry
            self._pending.append((method, slots, body_cell))
        return entry

    # ------------------------------------------------------------------
    # Trace stubs.

    def _record_stub(self, site_id, kind: ast.AccessKind, field_name: str):
        """The statically specialized instrumentation stub for one site.

        Traced sites get a closure over the pre-bound sink fast path and
        the interned label cache; untraced sites (outside the static
        race set, or no sink attached) reduce to one counter increment —
        the compiled analogue of the instrumenter omitting the ``trace``
        pseudo-instruction.

        Under tiering (:mod:`repro.runtime.tiering`) a traced site
        compiles to one of two specialized stubs instead:

        * tier 1 (static): the escape analysis proved every object the
          site can touch thread-local — a bare counter stub;
        * tier 0: the detector's keying, owner check, and single-probe
          cache hit are inlined with counter effects identical to
          ``on_access_parts``; terminal (settled) states elide, and
          everything non-trivial falls into the unmodified spine.
        """
        engine = self.engine
        counts = engine._counts
        sink = engine._sink
        trace_sites = engine._trace_sites
        if sink is None or (
            trace_sites is not None and site_id not in trace_sites
        ):

            def record(ref, thread):
                counts[0] += 1

            return record

        tiering = engine._tiering
        if tiering is not None and site_id in tiering.static_sites:
            # Tier 1 (static): provably thread-local — every access
            # here is an `owned_filtered` no-op in the untired run;
            # folded back into the counters at run end.
            tiering.sites_tier1_static += 1
            static_cell = tiering.elide_static_cell

            def record(ref, thread):
                counts[0] += 1
                static_cell[0] += 1

            return record

        emit = engine._emit_parts
        labels = engine._ref_labels
        label_of = engine._label_of

        if tiering is None:

            def record(ref, thread):
                counts[0] += 1
                counts[1] += 1
                uid = ref.uid
                try:
                    cached = labels[uid]
                except KeyError:
                    cached = label_of(ref)
                emit(
                    uid,
                    field_name,
                    thread.thread_id,
                    kind,
                    site_id,
                    cached[0],
                    cached[1],
                )

            return record

        # Tier 0: the detector's dominant outcomes inlined.  Keying
        # mirrors RaceDetector._key, the owner check mirrors the inlined
        # OwnershipFilter.admit, and the cache probe mirrors
        # AccessCache.access_tracked's hit path (which mutates nothing
        # but the hit counter).  Each completed branch replicates the
        # spine's *state* effects (the virgin claim) inline and defers
        # its *counter* effects to one list-cell increment —
        # TieringState.fold restores every pipeline/ownership/cache
        # counter exactly at run end, and nothing reads them mid-run.
        # Settled terminal states elide even the claim.  Transitions,
        # cache misses, and exotic configurations fall through to the
        # unmodified spine call, which re-derives the key and counts
        # everything itself — the fast path must not touch any state
        # before falling through.
        tiering.sites_tier0 += 1
        owners = tiering.owners
        intern = tiering.intern
        merged = tiering.fields_merged
        shared = tiering.shared
        inline_cache = tiering.inline_cache
        cache_threads = tiering.cache_threads
        cache_size = tiering.cache_size
        hash_multiplier = tiering.hash_multiplier
        hash_mask = tiering.hash_mask
        is_write = kind is ast.AccessKind.WRITE
        settled_cell = tiering.settled_cell
        survivor_cell = tiering.survivor_cell
        owned_cell = tiering.inline_owned_cell
        hit_cell = tiering.inline_hit_cell
        settled_elided = tiering.elide_settled_cell

        def record(ref, thread):
            counts[0] += 1
            uid = ref.uid
            if merged and type(ref) is not MJClassObject:
                key = uid
            else:
                key = intern(uid, field_name)
            tid = thread.thread_id
            owner = owners.get(key)
            if owner is shared:
                if inline_cache:
                    caches = cache_threads.get(tid)
                    if caches is not None:
                        slots = (
                            caches.write if is_write else caches.read
                        )._slots
                        entry = slots[
                            (((hash(key) * hash_multiplier) & hash_mask) >> 16)
                            % cache_size
                        ]
                        if (
                            entry is not None
                            and entry.valid
                            and entry.key == key
                        ):
                            hit_cell[0] += 1
                            return
            elif settled_cell[0]:
                if tid == survivor_cell[0] and (
                    owner is None or owner == tid
                ):
                    # Terminal state: the survivor's virgin/self-owned
                    # access can never transition — elide.
                    settled_elided[0] += 1
                    return
            elif owner is None:
                owners[key] = tid
                owned_cell[0] += 1
                return
            elif owner == tid:
                owned_cell[0] += 1
                return
            counts[1] += 1
            try:
                cached = labels[uid]
            except KeyError:
                cached = label_of(ref)
            emit(
                uid,
                field_name,
                thread.thread_id,
                kind,
                site_id,
                cached[0],
                cached[1],
            )

        return record

    # ------------------------------------------------------------------
    # Statement lists (fusion 1: no block generators).

    def _stmt_items(self, stmts: list, ctx) -> tuple:
        """Compile a statement list to a tuple of (is_gen, fn) items;
        enclosing closures run the items with an inline loop."""
        return tuple(self._compile_stmt(stmt, ctx) for stmt in stmts)

    @staticmethod
    def _pure_runner(items: tuple):
        """If every item is pure, one plain closure runs them all;
        otherwise ``None``."""
        if any(is_gen for is_gen, _ in items):
            return None
        fns = tuple(fn for _, fn in items)
        if not fns:
            return _noop
        if len(fns) == 1:
            return fns[0]

        def run_pure(frame):
            for fn in fns:
                fn(frame)

        return run_pure

    def _compile_stmts(self, stmts: list, ctx):
        """A statement list as a single (is_gen, fn) closure — used
        where a block appears in statement position."""
        items = self._stmt_items(stmts, ctx)
        pure = self._pure_runner(items)
        if pure is not None:
            return False, pure
        if len(items) == 1:
            return items[0]

        def run_mixed(frame, thread):
            for is_gen, fn in items:
                if is_gen:
                    yield from fn(frame, thread)
                else:
                    fn(frame)

        return True, run_mixed

    # ------------------------------------------------------------------
    # Statements.

    def _compile_stmt(self, stmt: ast.Stmt, ctx):
        node_type = type(stmt)
        if node_type is ast.AssignLocal or node_type is ast.VarDecl:
            value = stmt.value if node_type is ast.AssignLocal else stmt.init
            slot = ctx[stmt.name]
            value_gen, value_fn = self._compile_expr(value, ctx, dest=slot)
            if value_gen:
                # The template stores into the slot itself (fusion 3).
                return True, value_fn

            def assign(frame):
                frame[slot] = value_fn(frame)

            return False, assign
        if node_type is ast.If:
            return self._compile_if(stmt, ctx)
        if node_type is ast.While:
            return self._compile_while(stmt, ctx)
        if node_type is ast.FieldWrite:
            return self._compile_field_write(stmt, ctx)
        if node_type is ast.ArrayWrite:
            return self._compile_array_write(stmt, ctx)
        if node_type is ast.StaticFieldWrite:
            return self._compile_static_write(stmt, ctx)
        if node_type is ast.ExprStmt:
            # Expression closures share the statement calling convention
            # (block runners discard values), so reuse them directly.
            return self._compile_expr(stmt.expr, ctx)
        if node_type is ast.Sync:
            return self._compile_sync(stmt, ctx)
        if node_type is ast.Start:
            return self._compile_unary_kernel(
                stmt.thread, self.engine._start_kernel, stmt.location, ctx
            )
        if node_type is ast.Join:
            return self._compile_unary_kernel(
                stmt.thread, self.engine._join_kernel, stmt.location, ctx
            )
        if node_type is ast.Wait:
            return self._compile_unary_kernel(
                stmt.target, self.engine._wait_kernel, stmt.location, ctx
            )
        if node_type is ast.Notify:
            return self._compile_notify(stmt, ctx)
        if node_type is ast.Barrier:
            return self._compile_barrier(stmt, ctx)
        if node_type is ast.Return:
            return self._compile_return(stmt, ctx)
        if node_type is ast.Print:
            value_gen, value_fn = self._compile_expr(stmt.value, ctx)
            out_append = self.engine.output.append
            if value_gen:

                def print_gen(frame, thread):
                    out_append(mj_repr((yield from value_fn(frame, thread))))

                return True, print_gen

            def print_pure(frame):
                out_append(mj_repr(value_fn(frame)))

            return False, print_pure
        if node_type is ast.Assert:
            cond_gen, cond_fn = self._compile_expr(stmt.cond, ctx)
            cond_location = stmt.cond.location
            location = stmt.location
            if cond_gen:

                def assert_gen(frame, thread):
                    cond = yield from cond_fn(frame, thread)
                    if type(cond) is not bool:
                        raise MJRuntimeError(
                            f"condition must be a boolean, got {mj_repr(cond)}",
                            cond_location,
                        )
                    if not cond:
                        raise MJAssertionError("assertion failed", location)

                return True, assert_gen

            def assert_pure(frame):
                cond = cond_fn(frame)
                if type(cond) is not bool:
                    raise MJRuntimeError(
                        f"condition must be a boolean, got {mj_repr(cond)}",
                        cond_location,
                    )
                if not cond:
                    raise MJAssertionError("assertion failed", location)

            return False, assert_pure
        if node_type is ast.Block:
            return self._compile_stmts(stmt.body, ctx)
        location = stmt.location
        name = node_type.__name__

        def unhandled(frame):
            raise MJRuntimeError(f"unhandled statement {name}", location)

        return False, unhandled

    def _compile_return(self, stmt: ast.Return, ctx):
        if stmt.value is None:

            def return_null(frame):
                raise _Return(None)

            return False, return_null
        value_gen, value_fn = self._compile_expr(
            stmt.value, ctx, dest=_DEST_RETURN
        )
        if value_gen:
            # The template raises _Return itself (fusion 3).
            return True, value_fn

        def return_pure(frame):
            raise _Return(value_fn(frame))

        return False, return_pure

    def _compile_if(self, stmt: ast.If, ctx):
        cond_gen, cond_fn = self._compile_expr(stmt.cond, ctx)
        cond_location = stmt.cond.location
        then_items = self._stmt_items(stmt.then_block.body, ctx)
        then_pure = self._pure_runner(then_items)
        if stmt.else_block is not None:
            else_items = self._stmt_items(stmt.else_block.body, ctx)
            else_pure = self._pure_runner(else_items)
        else:
            else_items = ()
            else_pure = _noop
        if not cond_gen and then_pure is not None and else_pure is not None:

            def if_pure(frame):
                cond = cond_fn(frame)
                if cond is True:
                    then_pure(frame)
                elif cond is False:
                    else_pure(frame)
                else:
                    raise MJRuntimeError(
                        f"condition must be a boolean, got {mj_repr(cond)}",
                        cond_location,
                    )

            return False, if_pure

        if cond_gen:
            # Evaluate the condition inline (no dedicated generator
            # frame) via its postfix op stream — see _linearize.
            cond_ops: list = []
            self._linearize(stmt.cond, ctx, cond_ops)
            cond_ops = tuple(cond_ops)
        else:
            cond_ops = ()

        def if_gen(frame, thread):
            if not cond_gen:
                cond = cond_fn(frame)
            else:
                stack = []
                append = stack.append
                for op in cond_ops:
                    tag = op[0]
                    if tag == 0:
                        append(op[1](frame))
                    elif tag == 4:
                        right = stack.pop()
                        append(op[1](stack.pop(), right))
                    elif tag == 1:
                        obj = op[1](frame)
                        yield  # Preemption point before the read.
                        if type(obj) is MJObject and op[2] in obj.fields:
                            op[3](obj, thread)
                            append(obj.fields[op[2]])
                        else:
                            append(op[4](obj, thread))
                    elif tag == 2:
                        array = op[1](frame)
                        index = op[2](frame)
                        yield
                        if (
                            type(array) is MJArray
                            and type(index) is int
                            and 0 <= index < len(array.elements)
                        ):
                            op[3](array, thread)
                            append(array.elements[index])
                        else:
                            append(op[4](array, index))
                    else:
                        append((yield from op[1](frame, thread)))
                cond = stack[0]
            if cond is True:
                for is_gen, fn in then_items:
                    if is_gen:
                        yield from fn(frame, thread)
                    else:
                        fn(frame)
            elif cond is False:
                for is_gen, fn in else_items:
                    if is_gen:
                        yield from fn(frame, thread)
                    else:
                        fn(frame)
            else:
                raise MJRuntimeError(
                    f"condition must be a boolean, got {mj_repr(cond)}",
                    cond_location,
                )

        return True, if_gen

    def _compile_while(self, stmt: ast.While, ctx):
        cond_gen, cond_fn = self._compile_expr(stmt.cond, ctx)
        cond_location = stmt.cond.location
        body_items = self._stmt_items(stmt.body.body, ctx)
        body_pure = self._pure_runner(body_items)
        # The back-edge yield makes every loop a generator; the common
        # shapes (pure condition, single-statement body) get dedicated
        # closures with minimal per-iteration work.
        if not cond_gen and body_pure is not None:

            def while_pc_pb(frame, thread):
                while True:
                    cond = cond_fn(frame)
                    if cond is not True:
                        if cond is False:
                            break
                        raise MJRuntimeError(
                            f"condition must be a boolean, got {mj_repr(cond)}",
                            cond_location,
                        )
                    body_pure(frame)
                    yield  # Loop back-edge preemption point.

            return True, while_pc_pb
        if not cond_gen and len(body_items) == 1:
            only_fn = body_items[0][1]

            def while_pc_g1(frame, thread):
                while True:
                    cond = cond_fn(frame)
                    if cond is not True:
                        if cond is False:
                            break
                        raise MJRuntimeError(
                            f"condition must be a boolean, got {mj_repr(cond)}",
                            cond_location,
                        )
                    yield from only_fn(frame, thread)
                    yield

            return True, while_pc_g1
        if not cond_gen:

            def while_pc(frame, thread):
                while True:
                    cond = cond_fn(frame)
                    if cond is not True:
                        if cond is False:
                            break
                        raise MJRuntimeError(
                            f"condition must be a boolean, got {mj_repr(cond)}",
                            cond_location,
                        )
                    for is_gen, fn in body_items:
                        if is_gen:
                            yield from fn(frame, thread)
                        else:
                            fn(frame)
                    yield

            return True, while_pc

        # Generator condition: evaluate it inline via its postfix op
        # stream, one frame for the whole loop (see _linearize).
        cond_ops: list = []
        self._linearize(stmt.cond, ctx, cond_ops)
        cond_ops = tuple(cond_ops)

        def while_gc(frame, thread):
            while True:
                stack = []
                append = stack.append
                for op in cond_ops:
                    tag = op[0]
                    if tag == 0:
                        append(op[1](frame))
                    elif tag == 4:
                        right = stack.pop()
                        append(op[1](stack.pop(), right))
                    elif tag == 1:
                        obj = op[1](frame)
                        yield  # Preemption point before the read.
                        if type(obj) is MJObject and op[2] in obj.fields:
                            op[3](obj, thread)
                            append(obj.fields[op[2]])
                        else:
                            append(op[4](obj, thread))
                    elif tag == 2:
                        array = op[1](frame)
                        index = op[2](frame)
                        yield
                        if (
                            type(array) is MJArray
                            and type(index) is int
                            and 0 <= index < len(array.elements)
                        ):
                            op[3](array, thread)
                            append(array.elements[index])
                        else:
                            append(op[4](array, index))
                    else:
                        append((yield from op[1](frame, thread)))
                cond = stack[0]
                if cond is not True:
                    if cond is False:
                        break
                    raise MJRuntimeError(
                        f"condition must be a boolean, got {mj_repr(cond)}",
                        cond_location,
                    )
                for is_gen, fn in body_items:
                    if is_gen:
                        yield from fn(frame, thread)
                    else:
                        fn(frame)
                yield

        return True, while_gc

    # ------------------------------------------------------------------
    # Memory writes.

    def _compile_field_write(self, stmt: ast.FieldWrite, ctx):
        obj_gen, obj_fn = self._compile_expr(stmt.obj, ctx)
        value_gen, value_fn = self._compile_expr(stmt.value, ctx)
        field_name = stmt.field_name
        record = self._record_stub(
            stmt.site_id, ast.AccessKind.WRITE, field_name
        )
        location = stmt.location

        def slow(obj, value, thread):
            if obj is None:
                raise MJRuntimeError(
                    f"null dereference writing field {field_name!r}", location
                )
            if isinstance(obj, MJArray):
                raise MJRuntimeError(
                    f"cannot write field {field_name!r} of an array", location
                )
            if isinstance(obj, MJClassObject):
                if field_name not in obj.statics:
                    raise MJRuntimeError(
                        f"class {obj.class_info.name!r} has no static field "
                        f"{field_name!r}",
                        location,
                    )
                record(obj, thread)
                obj.statics[field_name] = value
                return
            if not isinstance(obj, MJObject):
                raise MJRuntimeError(
                    f"cannot write field {field_name!r} of {mj_repr(obj)}",
                    location,
                )
            raise MJRuntimeError(
                f"class {obj.class_info.name!r} has no field {field_name!r}",
                location,
            )

        if not obj_gen and not value_gen:

            def write_pure_ops(frame, thread):
                obj = obj_fn(frame)
                value = value_fn(frame)
                yield  # Preemption point before the write.
                if type(obj) is MJObject:
                    fields = obj.fields
                    if field_name in fields:
                        record(obj, thread)
                        fields[field_name] = value
                        return
                slow(obj, value, thread)

            return True, write_pure_ops

        def write_gen_ops(frame, thread):
            if obj_gen:
                obj = yield from obj_fn(frame, thread)
            else:
                obj = obj_fn(frame)
            if value_gen:
                value = yield from value_fn(frame, thread)
            else:
                value = value_fn(frame)
            yield
            if type(obj) is MJObject:
                fields = obj.fields
                if field_name in fields:
                    record(obj, thread)
                    fields[field_name] = value
                    return
            slow(obj, value, thread)

        return True, write_gen_ops

    def _compile_array_write(self, stmt: ast.ArrayWrite, ctx):
        array_gen, array_fn = self._compile_expr(stmt.array, ctx)
        index_gen, index_fn = self._compile_expr(stmt.index, ctx)
        value_gen, value_fn = self._compile_expr(stmt.value, ctx)
        record = self._record_stub(
            stmt.site_id, ast.AccessKind.WRITE, ARRAY_FIELD
        )
        location = stmt.location

        def fail(array, index):
            if array is None:
                raise MJRuntimeError(
                    "null dereference in array write", location
                )
            if not isinstance(array, MJArray):
                raise MJRuntimeError(
                    f"array write applied to {mj_repr(array)}", location
                )
            if not isinstance(index, int) or isinstance(index, bool):
                raise MJRuntimeError(
                    "array index must be an integer", location
                )
            raise MJRuntimeError(
                f"array index {index} out of bounds [0, {len(array)})",
                location,
            )

        if not (array_gen or index_gen or value_gen):

            def awrite_pure_ops(frame, thread):
                array = array_fn(frame)
                index = index_fn(frame)
                value = value_fn(frame)
                yield
                if type(array) is MJArray:
                    elements = array.elements
                    if type(index) is int and 0 <= index < len(elements):
                        record(array, thread)
                        elements[index] = value
                        return
                fail(array, index)

            return True, awrite_pure_ops

        def awrite_gen_ops(frame, thread):
            if array_gen:
                array = yield from array_fn(frame, thread)
            else:
                array = array_fn(frame)
            if index_gen:
                index = yield from index_fn(frame, thread)
            else:
                index = index_fn(frame)
            if value_gen:
                value = yield from value_fn(frame, thread)
            else:
                value = value_fn(frame)
            yield
            if type(array) is MJArray:
                elements = array.elements
                if type(index) is int and 0 <= index < len(elements):
                    record(array, thread)
                    elements[index] = value
                    return
            fail(array, index)

        return True, awrite_gen_ops

    def _resolve_static_owner(self, class_name: str, field_name: str):
        """Compile-time static-field owner resolution; ``None`` defers
        the (identical) failure to runtime."""
        try:
            info = self.resolved.class_info(class_name)
        except MJError:
            return None
        return info.static_field_owner(field_name)

    def _compile_static_write(self, stmt: ast.StaticFieldWrite, ctx):
        value_gen, value_fn = self._compile_expr(stmt.value, ctx)
        field_name = stmt.field_name
        location = stmt.location
        owner = self._resolve_static_owner(stmt.class_name, field_name)
        if owner is None:
            resolve_owner = self.engine._static_owner_object
            class_name = stmt.class_name

            def swrite_unresolved(frame, thread):
                if value_gen:
                    yield from value_fn(frame, thread)
                else:
                    value_fn(frame)
                resolve_owner(class_name, field_name, location)

            return True, swrite_unresolved
        class_object = self.engine._class_object
        owner_name = owner.name
        record = self._record_stub(
            stmt.site_id, ast.AccessKind.WRITE, field_name
        )

        def swrite(frame, thread):
            if value_gen:
                value = yield from value_fn(frame, thread)
            else:
                value = value_fn(frame)
            owner_obj = class_object(owner_name)
            yield
            record(owner_obj, thread)
            owner_obj.statics[field_name] = value

        return True, swrite

    # ------------------------------------------------------------------
    # Synchronization statements.

    def _compile_sync(self, stmt: ast.Sync, ctx):
        lock_gen, lock_fn = self._compile_expr(stmt.lock, ctx)
        body_items = self._stmt_items(stmt.body.body, ctx)
        engine = self.engine
        sink = engine._sink
        on_enter = sink.on_monitor_enter if sink is not None else None
        on_exit = sink.on_monitor_exit if sink is not None else None
        lock_stacks = engine._lock_stacks
        location = stmt.location
        BLOCKED = ThreadStatus.BLOCKED

        def sync(frame, thread):
            if lock_gen:
                lock = yield from lock_fn(frame, thread)
            else:
                lock = lock_fn(frame)
            if not isinstance(lock, Reference):
                raise MJRuntimeError(
                    f"sync requires an object, got {mj_repr(lock)}", location
                )
            monitor = lock.monitor
            thread_id = thread.thread_id
            while not monitor.can_acquire(thread_id):
                thread.status = BLOCKED
                thread.blocked_on = monitor
                yield
            outermost = monitor.acquire(thread_id)
            if on_enter is not None:
                on_enter(thread_id, lock.uid, reentrant=not outermost)
            stack = lock_stacks.setdefault(thread_id, [])
            stack.append(lock.uid)
            try:
                for is_gen, fn in body_items:
                    if is_gen:
                        yield from fn(frame, thread)
                    else:
                        fn(frame)
            finally:
                stack.pop()
                # A thread torn down mid-wait already released the
                # monitor; only release when actually held.
                if monitor.owner == thread_id:
                    released = monitor.release(thread_id)
                    if on_exit is not None:
                        on_exit(thread_id, lock.uid, reentrant=not released)

        return True, sync

    def _compile_unary_kernel(self, operand: ast.Expr, kernel, location, ctx):
        """start/join/wait: evaluate one operand, hand off to an engine
        kernel generator."""
        operand_gen, operand_fn = self._compile_expr(operand, ctx)

        def run_kernel(frame, thread):
            if operand_gen:
                obj = yield from operand_fn(frame, thread)
            else:
                obj = operand_fn(frame)
            yield from kernel(obj, thread, location)

        return True, run_kernel

    def _compile_notify(self, stmt: ast.Notify, ctx):
        target_gen, target_fn = self._compile_expr(stmt.target, ctx)
        kernel = self.engine._notify_kernel
        notify_all = stmt.notify_all
        location = stmt.location

        def notify(frame, thread):
            if target_gen:
                obj = yield from target_fn(frame, thread)
            else:
                obj = target_fn(frame)
            kernel(obj, thread, notify_all, location)
            return
            yield  # Unreached; forces generator (notify never suspends).

        return True, notify

    def _compile_barrier(self, stmt: ast.Barrier, ctx):
        target_gen, target_fn = self._compile_expr(stmt.target, ctx)
        parties_gen, parties_fn = self._compile_expr(stmt.parties, ctx)
        kernel = self.engine._barrier_kernel
        location = stmt.location

        def barrier(frame, thread):
            if target_gen:
                obj = yield from target_fn(frame, thread)
            else:
                obj = target_fn(frame)
            # The target check precedes parties evaluation (the
            # interpreter orders them this way too).
            if not isinstance(obj, Reference):
                raise MJRuntimeError(
                    f"barrier requires an object, got {mj_repr(obj)}", location
                )
            if parties_gen:
                parties = yield from parties_fn(frame, thread)
            else:
                parties = parties_fn(frame)
            yield from kernel(obj, parties, thread, location)

        return True, barrier

    # ------------------------------------------------------------------
    # Expressions.
    #
    # ``dest`` (fusion 3) tells a gen-expression template what to do
    # with its value: _DEST_VALUE returns it to the consuming closure,
    # a slot index stores it into the frame, _DEST_RETURN raises
    # _Return.  Pure closures always return the value — their consumer
    # handles the destination, since no frame is saved by fusing.

    def _compile_expr(self, expr: ast.Expr, ctx, dest=_DEST_VALUE):
        node_type = type(expr)
        if dest is not _DEST_VALUE:
            # Route to the dest-aware templates; any other generator
            # shape gets an explicit store/return wrapper so the
            # destination is never silently dropped.
            if node_type is ast.Binary and expr.op not in ("&&", "||"):
                return self._compile_binary(expr, ctx, dest)
            if node_type is ast.FieldRead:
                return self._compile_field_read(expr, ctx, dest)
            if node_type is ast.ArrayRead:
                return self._compile_array_read(expr, ctx, dest)
            if node_type is ast.Call:
                return self._compile_call(expr, ctx, dest)
            if node_type is ast.New:
                return self._compile_new(expr, ctx, dest)
            if node_type is ast.StaticFieldRead:
                return self._compile_static_read(expr, ctx, dest)
            is_gen, fn = self._compile_expr(expr, ctx)
            if not is_gen:
                return is_gen, fn
            if dest == _DEST_RETURN:

                def return_wrap(frame, thread):
                    raise _Return((yield from fn(frame, thread)))

                return True, return_wrap

            def store_wrap(frame, thread):
                frame[dest] = yield from fn(frame, thread)

            return True, store_wrap
        if node_type is ast.VarRef:
            return self._compile_var_ref(expr, ctx)
        if node_type is ast.Binary:
            return self._compile_binary(expr, ctx, dest)
        if node_type is ast.FieldRead:
            return self._compile_field_read(expr, ctx, dest)
        if node_type is ast.ArrayRead:
            return self._compile_array_read(expr, ctx, dest)
        if node_type is ast.IntLiteral or node_type is ast.BoolLiteral \
                or node_type is ast.StringLiteral:
            value = expr.value

            def const(frame):
                return value

            return False, const
        if node_type is ast.ThisRef:

            def this_ref(frame):
                return frame[0]

            return False, this_ref
        if node_type is ast.Call:
            return self._compile_call(expr, ctx, dest)
        if node_type is ast.NullLiteral:

            def null(frame):
                return None

            return False, null
        if node_type is ast.ClassRef:
            class_object = self.engine._class_object
            class_name = expr.class_name

            def class_ref(frame):
                return class_object(class_name)

            return False, class_ref
        if node_type is ast.Unary:
            return self._compile_unary(expr, ctx)
        if node_type is ast.StaticFieldRead:
            return self._compile_static_read(expr, ctx, dest)
        if node_type is ast.New:
            return self._compile_new(expr, ctx, dest)
        if node_type is ast.NewArray:
            return self._compile_new_array(expr, ctx)
        location = expr.location
        name = node_type.__name__

        def unhandled(frame):
            raise MJRuntimeError(f"unhandled expression {name}", location)

        return False, unhandled

    def _compile_var_ref(self, expr: ast.VarRef, ctx):
        name = expr.name
        location = expr.location
        slot = ctx.get(name)
        if slot is None:
            # Never assigned anywhere in the method: always unbound.
            def unbound(frame):
                raise MJRuntimeError(
                    f"unbound variable {name!r}", location
                )

            return False, unbound

        def var_ref(frame):
            value = frame[slot]
            if value is _UNBOUND:
                raise MJRuntimeError(f"unbound variable {name!r}", location)
            return value

        return False, var_ref

    def _compile_unary(self, expr: ast.Unary, ctx):
        operand_gen, operand_fn = self._compile_expr(expr.operand, ctx)
        op = expr.op
        location = expr.location
        if op == "!":

            def apply(value):
                if not isinstance(value, bool):
                    raise MJRuntimeError("'!' requires a boolean", location)
                return not value

        elif op == "-":

            def apply(value):
                if not isinstance(value, int) or isinstance(value, bool):
                    raise MJRuntimeError(
                        "unary '-' requires an integer", location
                    )
                return -value

        else:

            def apply(value):
                raise MJRuntimeError(
                    f"unknown unary operator {op!r}", location
                )

        if operand_gen:

            def unary_gen(frame, thread):
                return apply((yield from operand_fn(frame, thread)))

            return True, unary_gen

        def unary_pure(frame):
            return apply(operand_fn(frame))

        return False, unary_pure

    def _compile_binary(self, expr: ast.Binary, ctx, dest=_DEST_VALUE):
        op = expr.op
        if op == "&&" or op == "||":
            return self._compile_shortcircuit(expr, ctx)
        combine = _binary_combiner(op, expr.location)
        left_acc = self._access_operand(expr.left, ctx)
        right_acc = self._access_operand(expr.right, ctx)
        if left_acc is not None and right_acc is not None:
            # At least one side must actually yield, else both compiled
            # pure and we would not be here — checked below.
            if left_acc[0] != "pure" or right_acc[0] != "pure":
                return True, self._fused_binary(
                    left_acc, right_acc, combine, dest
                )
        left_gen, left_fn = self._compile_expr(expr.left, ctx)
        right_gen, right_fn = self._compile_expr(expr.right, ctx)
        if not left_gen and not right_gen:
            if op in _INT_FAST_OPS:
                fast = _INT_FAST_OPS[op]

                def binary_fast(frame):
                    left = left_fn(frame)
                    right = right_fn(frame)
                    if type(left) is int and type(right) is int:
                        return fast(left, right)
                    return combine(left, right)

                return False, binary_fast

            def binary_pure(frame):
                return combine(left_fn(frame), right_fn(frame))

            return False, binary_pure

        # A call combined with a pure operand folds the combine into the
        # call closure itself, removing the binary frame from the resume
        # chain (hot for recursive accumulations like
        # ``count = count + search(...)``).  The pure side cannot yield
        # and frames are thread-local, so only error ordering is
        # observable — preserved by evaluating a pure *left* operand at
        # the top of the call generator (exactly where the binary frame
        # would have) and a pure *right* operand after the call returns.
        if left_gen != right_gen:
            if right_gen and type(expr.right) is ast.Call:
                return self._compile_call(
                    expr.right, ctx, dest, fold=(combine, left_fn, None)
                )
            if left_gen and type(expr.left) is ast.Call:
                return self._compile_call(
                    expr.left, ctx, dest, fold=(combine, None, right_fn)
                )

        # A deeper tree (nested binaries over accesses/calls) flattens
        # to one generator frame running a postfix op sequence instead
        # of one frame per interior node.
        ops: list = []
        self._linearize(expr.left, ctx, ops)
        self._linearize(expr.right, ctx, ops)
        ops.append((4, combine))
        if len(ops) > 3:
            # Left-deep spines — leaf, then (leaf, combine) pairs — are
            # the common shape and evaluate without a value stack.
            if len(ops) % 2 == 1 and ops[0][0] != 4 and all(
                ops[i][0] != 4 and ops[i + 1][0] == 4
                for i in range(1, len(ops), 2)
            ):
                pairs = tuple(
                    (ops[i], ops[i + 1][1]) for i in range(1, len(ops), 2)
                )
                return True, self._spine_eval(ops[0], pairs, dest)
            return True, self._tree_eval(tuple(ops), dest)

        def binary_gen(frame, thread):
            if left_gen:
                left = yield from left_fn(frame, thread)
            else:
                left = left_fn(frame)
            if right_gen:
                right = yield from right_fn(frame, thread)
            else:
                right = right_fn(frame)
            value = combine(left, right)
            if dest is _DEST_VALUE:
                return value
            if dest == _DEST_RETURN:
                raise _Return(value)
            frame[dest] = value

        return True, binary_gen

    # -- Flattened binary trees (fusion 3, deep case). -----------------

    def _linearize(self, expr: ast.Expr, ctx, ops: list) -> None:
        """Append postfix ops for ``expr`` to ``ops``.

        Op encodings: ``(0, fn)`` pure value; ``(1, obj_fn, field_name,
        record, slow)`` field read; ``(2, array_fn, index_fn, record,
        fail)`` array read; ``(3, gen_fn)`` any other generator
        sub-expression (delegated); ``(4, combine)`` apply an operator
        to the top two stack values.  Postfix order preserves the
        interpreter's left-to-right leaf evaluation and the point at
        which each combiner (and its errors) runs.
        """
        if type(expr) is ast.Binary and expr.op not in ("&&", "||"):
            is_gen, fn = self._compile_expr(expr, ctx)
            if not is_gen:
                ops.append((0, fn))
                return
            self._linearize(expr.left, ctx, ops)
            self._linearize(expr.right, ctx, ops)
            ops.append((4, _binary_combiner(expr.op, expr.location)))
            return
        acc = self._access_operand(expr, ctx)
        if acc is None:
            _, fn = self._compile_expr(expr, ctx)
            ops.append((3, fn))
        elif acc[0] == "pure":
            ops.append((0, acc[1]))
        elif acc[0] == "field":
            ops.append((1,) + acc[1:])
        else:
            ops.append((2,) + acc[1:])

    def _spine_eval(self, first, pairs, dest):
        """Stack-free evaluator for a left-deep binary spine: evaluate
        the first leaf, then fold each (leaf, combiner) pair into the
        accumulator.  Leaf encodings match :meth:`_linearize`."""

        def spine(frame, thread):
            op = first
            tag = op[0]
            if tag == 0:
                acc = op[1](frame)
            elif tag == 1:
                obj = op[1](frame)
                yield  # Preemption point before the read.
                if type(obj) is MJObject and op[2] in obj.fields:
                    op[3](obj, thread)
                    acc = obj.fields[op[2]]
                else:
                    acc = op[4](obj, thread)
            elif tag == 2:
                array = op[1](frame)
                index = op[2](frame)
                yield
                if (
                    type(array) is MJArray
                    and type(index) is int
                    and 0 <= index < len(array.elements)
                ):
                    op[3](array, thread)
                    acc = array.elements[index]
                else:
                    acc = op[4](array, index)
            else:
                acc = yield from op[1](frame, thread)
            for op, comb in pairs:
                tag = op[0]
                if tag == 0:
                    value = op[1](frame)
                elif tag == 1:
                    obj = op[1](frame)
                    yield
                    if type(obj) is MJObject and op[2] in obj.fields:
                        op[3](obj, thread)
                        value = obj.fields[op[2]]
                    else:
                        value = op[4](obj, thread)
                elif tag == 2:
                    array = op[1](frame)
                    index = op[2](frame)
                    yield
                    if (
                        type(array) is MJArray
                        and type(index) is int
                        and 0 <= index < len(array.elements)
                    ):
                        op[3](array, thread)
                        value = array.elements[index]
                    else:
                        value = op[4](array, index)
                else:
                    value = yield from op[1](frame, thread)
                acc = comb(acc, value)
            if dest is _DEST_VALUE:
                return acc
            if dest == _DEST_RETURN:
                raise _Return(acc)
            frame[dest] = acc

        return spine

    def _tree_eval(self, ops: tuple, dest):
        """One generator frame evaluating a postfix op sequence over a
        small value stack; yields exactly where the nested closures
        would (before each access, inside delegated generators)."""

        def tree(frame, thread):
            stack = []
            push = stack.append
            pop = stack.pop
            for op in ops:
                tag = op[0]
                if tag == 0:
                    push(op[1](frame))
                elif tag == 4:
                    right = pop()
                    push(op[1](pop(), right))
                elif tag == 1:
                    obj = op[1](frame)
                    yield  # Preemption point before the read.
                    if type(obj) is MJObject and op[2] in obj.fields:
                        op[3](obj, thread)
                        push(obj.fields[op[2]])
                    else:
                        push(op[4](obj, thread))
                elif tag == 2:
                    array = op[1](frame)
                    index = op[2](frame)
                    yield
                    if (
                        type(array) is MJArray
                        and type(index) is int
                        and 0 <= index < len(array.elements)
                    ):
                        op[3](array, thread)
                        push(array.elements[index])
                    else:
                        push(op[4](array, index))
                else:
                    push((yield from op[1](frame, thread)))
            value = stack[0]
            if dest is _DEST_VALUE:
                return value
            if dest == _DEST_RETURN:
                raise _Return(value)
            frame[dest] = value

        return tree

    # -- Fused binary over access-read operands (fusion 3). ------------

    def _access_operand(self, expr: ast.Expr, ctx):
        """Classify an operand for the fused binary template.

        Returns ``("pure", fn)``, ``("field", obj_fn, field_name,
        record, slow)``, ``("array", array_fn, index_fn, record,
        fail)``, or ``None`` when the operand is a generator of another
        shape (falls back to the generic chain).
        """
        node_type = type(expr)
        if node_type is ast.FieldRead:
            obj_gen, obj_fn = self._compile_expr(expr.obj, ctx)
            if obj_gen:
                return None
            record, slow = self._field_read_parts(expr)
            return ("field", obj_fn, expr.field_name, record, slow)
        if node_type is ast.ArrayRead:
            array_gen, array_fn = self._compile_expr(expr.array, ctx)
            index_gen, index_fn = self._compile_expr(expr.index, ctx)
            if array_gen or index_gen:
                return None
            record, fail = self._array_read_parts(expr)
            return ("array", array_fn, index_fn, record, fail)
        is_gen, fn = self._compile_expr(expr, ctx)
        if is_gen:
            return None
        return ("pure", fn)

    def _fused_binary(self, left_acc, right_acc, combine, dest):
        """One generator frame computing ``combine(left, right)`` where
        operands may be field/array reads (each yielding exactly like
        the AST engine before its access)."""
        lmode = left_acc[0]
        rmode = right_acc[0]
        # Pad so each operand unpacks once at closure creation; the
        # meaning of l1..l4 depends on the mode (see _access_operand).
        l1, l2, l3, l4 = (left_acc + (None, None, None))[1:5]
        r1, r2, r3, r4 = (right_acc + (None, None, None))[1:5]

        def fused(frame, thread):
            if lmode == "pure":
                left = l1(frame)
            elif lmode == "field":
                obj = l1(frame)
                yield  # Preemption point before the read.
                if type(obj) is MJObject and l2 in obj.fields:
                    l3(obj, thread)
                    left = obj.fields[l2]
                else:
                    left = l4(obj, thread)
            else:
                array = l1(frame)
                index = l2(frame)
                yield
                if (
                    type(array) is MJArray
                    and type(index) is int
                    and 0 <= index < len(array.elements)
                ):
                    l3(array, thread)
                    left = array.elements[index]
                else:
                    left = l4(array, index)
            if rmode == "pure":
                right = r1(frame)
            elif rmode == "field":
                obj = r1(frame)
                yield
                if type(obj) is MJObject and r2 in obj.fields:
                    r3(obj, thread)
                    right = obj.fields[r2]
                else:
                    right = r4(obj, thread)
            else:
                array = r1(frame)
                index = r2(frame)
                yield
                if (
                    type(array) is MJArray
                    and type(index) is int
                    and 0 <= index < len(array.elements)
                ):
                    r3(array, thread)
                    right = array.elements[index]
                else:
                    right = r4(array, index)
            value = combine(left, right)
            if dest is _DEST_VALUE:
                return value
            if dest == _DEST_RETURN:
                raise _Return(value)
            frame[dest] = value

        return fused

    def _compile_shortcircuit(self, expr: ast.Binary, ctx):
        left_gen, left_fn = self._compile_expr(expr.left, ctx)
        right_gen, right_fn = self._compile_expr(expr.right, ctx)
        left_location = expr.left.location
        right_location = expr.right.location
        is_and = expr.op == "&&"
        if not left_gen and not right_gen:

            def shortcircuit_pure(frame):
                left = left_fn(frame)
                if type(left) is not bool:
                    raise MJRuntimeError(
                        f"condition must be a boolean, got {mj_repr(left)}",
                        left_location,
                    )
                if left is not is_and:
                    # and: left False -> False; or: left True -> True.
                    return left
                right = right_fn(frame)
                if type(right) is not bool:
                    raise MJRuntimeError(
                        f"condition must be a boolean, got {mj_repr(right)}",
                        right_location,
                    )
                return right

            return False, shortcircuit_pure

        def shortcircuit_gen(frame, thread):
            if left_gen:
                left = yield from left_fn(frame, thread)
            else:
                left = left_fn(frame)
            if type(left) is not bool:
                raise MJRuntimeError(
                    f"condition must be a boolean, got {mj_repr(left)}",
                    left_location,
                )
            if left is not is_and:
                return left
            if right_gen:
                right = yield from right_fn(frame, thread)
            else:
                right = right_fn(frame)
            if type(right) is not bool:
                raise MJRuntimeError(
                    f"condition must be a boolean, got {mj_repr(right)}",
                    right_location,
                )
            return right

        return True, shortcircuit_gen

    # ------------------------------------------------------------------
    # Memory reads.

    def _field_read_parts(self, expr: ast.FieldRead):
        """The record stub and slow path shared by every field-read
        template."""
        field_name = expr.field_name
        record = self._record_stub(
            expr.site_id, ast.AccessKind.READ, field_name
        )
        location = expr.location

        def slow(obj, thread):
            if obj is None:
                raise MJRuntimeError(
                    f"null dereference reading field {field_name!r}", location
                )
            if isinstance(obj, MJArray):
                if field_name == "length":
                    # Array length is immutable: not an access event.
                    return len(obj)
                raise MJRuntimeError(
                    f"arrays have no field {field_name!r}", location
                )
            if isinstance(obj, MJClassObject):
                if field_name not in obj.statics:
                    raise MJRuntimeError(
                        f"class {obj.class_info.name!r} has no static field "
                        f"{field_name!r}",
                        location,
                    )
                record(obj, thread)
                return obj.statics[field_name]
            if not isinstance(obj, MJObject):
                raise MJRuntimeError(
                    f"cannot read field {field_name!r} of {mj_repr(obj)}",
                    location,
                )
            raise MJRuntimeError(
                f"class {obj.class_info.name!r} has no field {field_name!r}",
                location,
            )

        return record, slow

    def _compile_field_read(self, expr: ast.FieldRead, ctx, dest=_DEST_VALUE):
        obj_gen, obj_fn = self._compile_expr(expr.obj, ctx)
        field_name = expr.field_name
        record, slow = self._field_read_parts(expr)

        if not obj_gen:

            def read_pure_obj(frame, thread):
                obj = obj_fn(frame)
                yield  # Preemption point before the read.
                if type(obj) is MJObject:
                    fields = obj.fields
                    if field_name in fields:
                        record(obj, thread)
                        value = fields[field_name]
                    else:
                        value = slow(obj, thread)
                else:
                    value = slow(obj, thread)
                if dest is _DEST_VALUE:
                    return value
                if dest == _DEST_RETURN:
                    raise _Return(value)
                frame[dest] = value

            return True, read_pure_obj

        def read_gen_obj(frame, thread):
            obj = yield from obj_fn(frame, thread)
            yield
            if type(obj) is MJObject:
                fields = obj.fields
                if field_name in fields:
                    record(obj, thread)
                    value = fields[field_name]
                else:
                    value = slow(obj, thread)
            else:
                value = slow(obj, thread)
            if dest is _DEST_VALUE:
                return value
            if dest == _DEST_RETURN:
                raise _Return(value)
            frame[dest] = value

        return True, read_gen_obj

    def _array_read_parts(self, expr: ast.ArrayRead):
        record = self._record_stub(
            expr.site_id, ast.AccessKind.READ, ARRAY_FIELD
        )
        location = expr.location

        def fail(array, index):
            if array is None:
                raise MJRuntimeError(
                    "null dereference in array read", location
                )
            if not isinstance(array, MJArray):
                raise MJRuntimeError(
                    f"array read applied to {mj_repr(array)}", location
                )
            if not isinstance(index, int) or isinstance(index, bool):
                raise MJRuntimeError(
                    "array index must be an integer", location
                )
            raise MJRuntimeError(
                f"array index {index} out of bounds [0, {len(array)})",
                location,
            )

        return record, fail

    def _compile_array_read(self, expr: ast.ArrayRead, ctx, dest=_DEST_VALUE):
        array_gen, array_fn = self._compile_expr(expr.array, ctx)
        index_gen, index_fn = self._compile_expr(expr.index, ctx)
        record, fail = self._array_read_parts(expr)

        if not array_gen and not index_gen:

            def aread_pure_ops(frame, thread):
                array = array_fn(frame)
                index = index_fn(frame)
                yield
                if type(array) is MJArray:
                    elements = array.elements
                    if type(index) is int and 0 <= index < len(elements):
                        record(array, thread)
                        value = elements[index]
                        if dest is _DEST_VALUE:
                            return value
                        if dest == _DEST_RETURN:
                            raise _Return(value)
                        frame[dest] = value
                        return
                value = fail(array, index)

            return True, aread_pure_ops

        def aread_gen_ops(frame, thread):
            if array_gen:
                array = yield from array_fn(frame, thread)
            else:
                array = array_fn(frame)
            if index_gen:
                index = yield from index_fn(frame, thread)
            else:
                index = index_fn(frame)
            yield
            if type(array) is MJArray:
                elements = array.elements
                if type(index) is int and 0 <= index < len(elements):
                    record(array, thread)
                    value = elements[index]
                    if dest is _DEST_VALUE:
                        return value
                    if dest == _DEST_RETURN:
                        raise _Return(value)
                    frame[dest] = value
                    return
            value = fail(array, index)

        return True, aread_gen_ops

    def _compile_static_read(
        self, expr: ast.StaticFieldRead, ctx, dest=_DEST_VALUE
    ):
        field_name = expr.field_name
        location = expr.location
        owner = self._resolve_static_owner(expr.class_name, field_name)
        if owner is None:
            resolve_owner = self.engine._static_owner_object
            class_name = expr.class_name

            def sread_unresolved(frame, thread):
                resolve_owner(class_name, field_name, location)
                yield  # Unreached: resolution above always raises.

            return True, sread_unresolved
        class_object = self.engine._class_object
        owner_name = owner.name
        record = self._record_stub(
            expr.site_id, ast.AccessKind.READ, field_name
        )

        def sread(frame, thread):
            owner_obj = class_object(owner_name)
            yield
            record(owner_obj, thread)
            value = owner_obj.statics[field_name]
            if dest is _DEST_VALUE:
                return value
            if dest == _DEST_RETURN:
                raise _Return(value)
            frame[dest] = value

        return True, sread

    # ------------------------------------------------------------------
    # Allocation and calls (fusion 2: prologue inlined at the site).

    def _compile_new(self, expr: ast.New, ctx, dest=_DEST_VALUE):
        class_name = expr.class_name
        location = expr.location
        try:
            info = self.resolved.class_info(class_name)
        except MJError:
            class_info = self.resolved.class_info

            def new_unknown(frame):
                class_info(class_name)  # Raises the resolver's error.
                raise MJRuntimeError(f"unknown class {class_name!r}", location)

            return False, new_unknown
        uids = self.engine._uids
        alloc_id = expr.alloc_id
        init = info.resolve_method("init")
        if init is None or init.is_static:
            if expr.args:

                def new_bad_args(frame):
                    # The interpreter allocates (drawing a uid) before
                    # noticing the missing init; preserve that.
                    MJObject(uids, info, alloc_id)
                    raise MJRuntimeError(
                        f"class {class_name!r} has no 'init' method but "
                        f"'new' was given arguments",
                        location,
                    )

                return False, new_bad_args

            def new_plain(frame):
                return MJObject(uids, info, alloc_id)

            return False, new_plain
        entry = self._entry(init)
        arg_parts = [self._compile_expr(arg, ctx) for arg in expr.args]
        args_pure = not any(is_gen for is_gen, _ in arg_parts)
        pure_arg_fns = tuple(fn for _, fn in arg_parts)
        arg_items = tuple(arg_parts)
        if args_pure:
            arg_ops = ()
        else:
            ops_list: list = []
            for arg in expr.args:
                self._linearize(arg, ctx, ops_list)
            arg_ops = tuple(ops_list)
        nparams = entry.nparams
        nslots = entry.nslots
        body_cell = entry.body_cell
        if len(expr.args) != nparams:
            qname, entry_location = entry.qname, entry.location
            nargs = len(expr.args)

            def new_arity_error(frame, thread):
                MJObject(uids, info, alloc_id)
                for is_gen, fn in arg_items:
                    if is_gen:
                        yield from fn(frame, thread)
                    else:
                        fn(frame)
                raise MJRuntimeError(
                    f"{qname} expects {nparams} argument(s), got {nargs}",
                    entry_location,
                )

            return True, new_arity_error

        def new_fused(frame, thread):
            obj = MJObject(uids, info, alloc_id)
            nframe = [_UNBOUND] * nslots
            nframe[0] = obj
            if args_pure:
                for i, fn in enumerate(pure_arg_fns):
                    nframe[i + 1] = fn(frame)
            else:
                values = []
                append = values.append
                for op in arg_ops:
                    tag = op[0]
                    if tag == 0:
                        append(op[1](frame))
                    elif tag == 4:
                        right = values.pop()
                        append(op[1](values.pop(), right))
                    elif tag == 1:
                        robj = op[1](frame)
                        yield  # Preemption point before the read.
                        if type(robj) is MJObject and op[2] in robj.fields:
                            op[3](robj, thread)
                            append(robj.fields[op[2]])
                        else:
                            append(op[4](robj, thread))
                    elif tag == 2:
                        array = op[1](frame)
                        index = op[2](frame)
                        yield
                        if (
                            type(array) is MJArray
                            and type(index) is int
                            and 0 <= index < len(array.elements)
                        ):
                            op[3](array, thread)
                            append(array.elements[index])
                        else:
                            append(op[4](array, index))
                    else:
                        append((yield from op[1](frame, thread)))
                nframe[1 : nparams + 1] = values
            try:
                for is_gen, fn in body_cell[0]:
                    if is_gen:
                        yield from fn(nframe, thread)
                    else:
                        fn(nframe)
            except _Return:
                pass
            if dest is _DEST_VALUE:
                return obj
            if dest == _DEST_RETURN:
                raise _Return(obj)
            frame[dest] = obj

        return True, new_fused

    def _compile_new_array(self, expr: ast.NewArray, ctx):
        size_gen, size_fn = self._compile_expr(expr.size, ctx)
        uids = self.engine._uids
        alloc_id = expr.alloc_id
        location = expr.location

        def build(size):
            if not isinstance(size, int) or isinstance(size, bool) or size < 0:
                raise MJRuntimeError(
                    "array size must be a non-negative integer", location
                )
            return MJArray(uids, size, alloc_id)

        if size_gen:

            def new_array_gen(frame, thread):
                return build((yield from size_fn(frame, thread)))

            return True, new_array_gen

        def new_array(frame):
            return build(size_fn(frame))

        return False, new_array

    def _compile_call(self, expr: ast.Call, ctx, dest=_DEST_VALUE, fold=None):
        # ``fold`` is (combiner, pre_fn, post_fn) from _compile_binary:
        # a binary combine over this call's value and one pure operand,
        # executed inside the call closure (see the fold comment there).
        if fold is not None:
            fold_combine, fold_pre, fold_post = fold
        else:
            fold_combine = fold_pre = fold_post = None
        if expr.receiver is not None:
            recv_gen, recv_fn = self._compile_expr(expr.receiver, ctx)
        else:
            recv_gen, recv_fn = False, None
        arg_parts = [self._compile_expr(arg, ctx) for arg in expr.args]
        args_pure = not any(is_gen for is_gen, _ in arg_parts)
        pure_arg_fns = tuple(fn for _, fn in arg_parts)
        arg_items = tuple(arg_parts)
        if args_pure:
            arg_ops = ()
        else:
            # One concatenated postfix stream for all arguments: each
            # argument leaves exactly one value, so after running the
            # stream the value stack IS the argument list, evaluated
            # inline in the call-site frame (see _linearize).
            ops_list: list = []
            for arg in expr.args:
                self._linearize(arg, ctx, ops_list)
            arg_ops = tuple(ops_list)
        nargs = len(expr.args)
        method_name = expr.method_name
        location = expr.location

        if expr.is_static:
            static_class = expr.static_class
            try:
                info = self.resolved.class_info(static_class)
                method = info.resolve_method(method_name)
            except MJError:
                method = None
            if method is not None and method.is_static:
                entry = self._entry(method)
                nparams = entry.nparams
                if nargs != nparams:
                    qname, entry_location = entry.qname, entry.location

                    def call_static_arity(frame, thread):
                        if fold_pre is not None:
                            fold_pre(frame)
                        if recv_fn is not None:
                            if recv_gen:
                                yield from recv_fn(frame, thread)
                            else:
                                recv_fn(frame)
                        for is_gen, fn in arg_items:
                            if is_gen:
                                yield from fn(frame, thread)
                            else:
                                fn(frame)
                        raise MJRuntimeError(
                            f"{qname} expects {nparams} argument(s), "
                            f"got {nargs}",
                            entry_location,
                        )

                    return True, call_static_arity
                nslots = entry.nslots
                body_cell = entry.body_cell

                def call_static(frame, thread):
                    if fold_pre is not None:
                        fold_left = fold_pre(frame)
                    if recv_fn is not None:
                        if recv_gen:
                            yield from recv_fn(frame, thread)
                        else:
                            recv_fn(frame)
                    nframe = [_UNBOUND] * nslots
                    if args_pure:
                        for i, fn in enumerate(pure_arg_fns):
                            nframe[i + 1] = fn(frame)
                    else:
                        values = []
                        append = values.append
                        for op in arg_ops:
                            tag = op[0]
                            if tag == 0:
                                append(op[1](frame))
                            elif tag == 4:
                                right = values.pop()
                                append(op[1](values.pop(), right))
                            elif tag == 1:
                                obj = op[1](frame)
                                yield  # Preemption point before the read.
                                if type(obj) is MJObject and op[2] in obj.fields:
                                    op[3](obj, thread)
                                    append(obj.fields[op[2]])
                                else:
                                    append(op[4](obj, thread))
                            elif tag == 2:
                                array = op[1](frame)
                                index = op[2](frame)
                                yield
                                if (
                                    type(array) is MJArray
                                    and type(index) is int
                                    and 0 <= index < len(array.elements)
                                ):
                                    op[3](array, thread)
                                    append(array.elements[index])
                                else:
                                    append(op[4](array, index))
                            else:
                                append((yield from op[1](frame, thread)))
                        nframe[1 : nparams + 1] = values
                    nframe[0] = None
                    value = None
                    try:
                        for is_gen, fn in body_cell[0]:
                            if is_gen:
                                yield from fn(nframe, thread)
                            else:
                                fn(nframe)
                    except _Return as signal:
                        value = signal.value
                    if fold_pre is not None:
                        value = fold_combine(fold_left, value)
                    elif fold_post is not None:
                        value = fold_combine(value, fold_post(frame))
                    if dest is _DEST_VALUE:
                        return value
                    if dest == _DEST_RETURN:
                        raise _Return(value)
                    frame[dest] = value

                return True, call_static

            class_info = self.resolved.class_info

            def call_static_missing(frame, thread):
                if fold_pre is not None:
                    fold_pre(frame)
                if recv_fn is not None:
                    if recv_gen:
                        yield from recv_fn(frame, thread)
                    else:
                        recv_fn(frame)
                for is_gen, fn in arg_items:
                    if is_gen:
                        yield from fn(frame, thread)
                    else:
                        fn(frame)
                class_info(static_class)  # Unknown class raises here.
                raise MJRuntimeError(
                    f"no static method {method_name!r} in class "
                    f"{static_class!r}",
                    location,
                )

            return True, call_static_missing

        vtables = self.vtables
        #: Monomorphic inline cache: [last class_info, its entry].  Call
        #: sites are overwhelmingly monomorphic, so an identity check
        #: replaces the per-call name + table lookups.
        cache = [None, None]

        def dispatch_error(receiver):
            if receiver is None:
                raise MJRuntimeError(
                    f"null dereference calling {method_name!r}", location
                )
            if not isinstance(receiver, MJObject):
                raise MJRuntimeError(
                    f"cannot call method {method_name!r} on "
                    f"{mj_repr(receiver)}",
                    location,
                )
            raise MJRuntimeError(
                f"class {receiver.class_info.name!r} has no instance method "
                f"{method_name!r}",
                location,
            )

        def call_virtual(frame, thread):
            if fold_pre is not None:
                fold_left = fold_pre(frame)
            if recv_fn is None:
                receiver = None
            elif recv_gen:
                receiver = yield from recv_fn(frame, thread)
            else:
                receiver = recv_fn(frame)
            if args_pure:
                args = [fn(frame) for fn in pure_arg_fns]
            else:
                args = []
                append = args.append
                for op in arg_ops:
                    tag = op[0]
                    if tag == 0:
                        append(op[1](frame))
                    elif tag == 4:
                        right = args.pop()
                        append(op[1](args.pop(), right))
                    elif tag == 1:
                        obj = op[1](frame)
                        yield  # Preemption point before the read.
                        if type(obj) is MJObject and op[2] in obj.fields:
                            op[3](obj, thread)
                            append(obj.fields[op[2]])
                        else:
                            append(op[4](obj, thread))
                    elif tag == 2:
                        array = op[1](frame)
                        index = op[2](frame)
                        yield
                        if (
                            type(array) is MJArray
                            and type(index) is int
                            and 0 <= index < len(array.elements)
                        ):
                            op[3](array, thread)
                            append(array.elements[index])
                        else:
                            append(op[4](array, index))
                    else:
                        append((yield from op[1](frame, thread)))
            if type(receiver) is MJObject:
                class_info = receiver.class_info
                if class_info is cache[0]:
                    entry = cache[1]
                else:
                    entry = vtables[class_info.name].get(method_name)
                    if entry is not None:
                        cache[0] = class_info
                        cache[1] = entry
                if entry is not None:
                    nparams = entry.nparams
                    if nargs != nparams:
                        raise MJRuntimeError(
                            f"{entry.qname} expects {nparams} argument(s), "
                            f"got {nargs}",
                            entry.location,
                        )
                    nframe = [_UNBOUND] * entry.nslots
                    nframe[0] = receiver
                    if nparams:
                        nframe[1 : nparams + 1] = args
                    value = None
                    try:
                        for is_gen, fn in entry.body_cell[0]:
                            if is_gen:
                                yield from fn(nframe, thread)
                            else:
                                fn(nframe)
                    except _Return as signal:
                        value = signal.value
                    if fold_pre is not None:
                        value = fold_combine(fold_left, value)
                    elif fold_post is not None:
                        value = fold_combine(value, fold_post(frame))
                    if dest is _DEST_VALUE:
                        return value
                    if dest == _DEST_RETURN:
                        raise _Return(value)
                    frame[dest] = value
                    return
            dispatch_error(receiver)

        return True, call_virtual


# ---------------------------------------------------------------------------
# Binary operator combiners.

#: Fast paths spliced inline when both operands are already ints; the
#: full combiner re-checks and raises for everything else.
_INT_FAST_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _binary_combiner(op: str, location):
    """A closure implementing one binary operator on evaluated operands,
    bit-for-bit compatible with ``Interpreter._eval_binary``."""
    if op == "==":

        def combine(left, right):
            if isinstance(left, Reference) or isinstance(right, Reference):
                return left is right
            return left == right

        return combine
    if op == "!=":

        def combine(left, right):
            if isinstance(left, Reference) or isinstance(right, Reference):
                return left is not right
            return not (left == right)

        return combine

    def type_error(left, right):
        raise MJRuntimeError(
            f"operator {op!r} requires integers, got "
            f"{mj_repr(left)} and {mj_repr(right)}",
            location,
        )

    def ints_only(left, right):
        for operand in (left, right):
            if not isinstance(operand, int) or isinstance(operand, bool):
                type_error(left, right)

    if op == "+":

        def combine(left, right):
            if isinstance(left, str):
                return left + mj_repr(right)
            if isinstance(right, str):
                return mj_repr(left) + right
            if type(left) is int and type(right) is int:
                return left + right
            ints_only(left, right)
            return left + right

        return combine
    if op == "-":

        def combine(left, right):
            if type(left) is int and type(right) is int:
                return left - right
            ints_only(left, right)
            return left - right

        return combine
    if op == "*":

        def combine(left, right):
            if type(left) is int and type(right) is int:
                return left * right
            ints_only(left, right)
            return left * right

        return combine
    if op == "/":

        def combine(left, right):
            if not (type(left) is int and type(right) is int):
                ints_only(left, right)
            if right == 0:
                raise MJRuntimeError("division by zero", location)
            return int(left / right)  # Truncating, like Java.

        return combine
    if op == "%":

        def combine(left, right):
            if not (type(left) is int and type(right) is int):
                ints_only(left, right)
            if right == 0:
                raise MJRuntimeError("modulo by zero", location)
            return left - int(left / right) * right

        return combine
    if op == "<":

        def combine(left, right):
            if type(left) is int and type(right) is int:
                return left < right
            ints_only(left, right)
            return left < right

        return combine
    if op == "<=":

        def combine(left, right):
            if type(left) is int and type(right) is int:
                return left <= right
            ints_only(left, right)
            return left <= right

        return combine
    if op == ">":

        def combine(left, right):
            if type(left) is int and type(right) is int:
                return left > right
            ints_only(left, right)
            return left > right

        return combine
    if op == ">=":

        def combine(left, right):
            if type(left) is int and type(right) is int:
                return left >= right
            ints_only(left, right)
            return left >= right

        return combine

    def combine(left, right):
        raise MJRuntimeError(f"unknown operator {op!r}", location)

    return combine
