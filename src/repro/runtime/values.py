"""Runtime value representations for the MJ interpreter.

MJ integers, booleans, and strings map directly onto Python values.
Reference values are:

* :class:`MJObject` — an instance of an MJ class;
* :class:`MJArray`  — a fixed-size array (a single logical memory
  location, per the paper's footnote 1);
* :class:`MJClassObject` — the singleton per-class object that holds
  static fields and is the lock of ``static sync`` methods;
* ``None`` — MJ ``null``.

Every reference value carries a process-unique ``uid``.  The uid plays
the role of the *memory address* in the paper's implementation
(Section 3.3): it identifies logical memory locations ``(uid, field)``
and lock identities.  Unlike real addresses, uids are never reused, so
this reproduction is immune to the garbage-collection address-reuse
caveat the paper works around by over-provisioning the heap.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from ..lang.resolver import ClassInfo


class _UidAllocator:
    """Process-wide allocator of reference uids (monotonic, never reused)."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        self._next += 1
        return self._next


class Monitor:
    """A reentrant monitor in the style of Java object monitors.

    The interpreter manipulates monitors directly; ``owner`` is a thread
    id and ``count`` the reentrancy depth.  The paper's runtime cache
    relies on the distinction between the *outermost* monitorexit (which
    actually releases the lock and must evict cache entries) and nested
    exits, which are ignored (Section 4.2).
    """

    __slots__ = ("owner", "count")

    def __init__(self) -> None:
        self.owner: Optional[int] = None
        self.count = 0

    def can_acquire(self, thread_id: int) -> bool:
        return self.owner is None or self.owner == thread_id

    def acquire(self, thread_id: int) -> bool:
        """Acquire (or re-enter); returns True if this was the outermost enter."""
        assert self.can_acquire(thread_id)
        self.owner = thread_id
        self.count += 1
        return self.count == 1

    def release(self, thread_id: int) -> bool:
        """Release one level; returns True if the lock was actually freed."""
        assert self.owner == thread_id and self.count > 0
        self.count -= 1
        if self.count == 0:
            self.owner = None
            return True
        return False


class Reference:
    """Base class of heap-allocated MJ values; every instance is a monitor."""

    __slots__ = ("uid", "monitor")

    def __init__(self, uids: _UidAllocator):
        self.uid = uids.allocate()
        self.monitor = Monitor()


class MJObject(Reference):
    """An instance of an MJ class."""

    __slots__ = ("class_info", "fields", "alloc_id")

    def __init__(self, uids: _UidAllocator, class_info: "ClassInfo", alloc_id: int):
        super().__init__(uids)
        self.class_info = class_info
        self.alloc_id = alloc_id
        self.fields = {name: None for name in class_info.instance_fields()}

    def __repr__(self) -> str:
        return f"<{self.class_info.name}#{self.uid}>"


class MJArray(Reference):
    """A fixed-size MJ array; elements start as ``null``."""

    __slots__ = ("elements", "alloc_id")

    def __init__(self, uids: _UidAllocator, size: int, alloc_id: int):
        super().__init__(uids)
        self.elements: list = [None] * size
        self.alloc_id = alloc_id

    def __len__(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:
        return f"<array[{len(self.elements)}]#{self.uid}>"


class MJClassObject(Reference):
    """The singleton class object of an MJ class (static fields + lock)."""

    __slots__ = ("class_info", "statics")

    def __init__(self, uids: _UidAllocator, class_info: "ClassInfo"):
        super().__init__(uids)
        self.class_info = class_info
        self.statics = {name: None for name in class_info.own_static_fields}

    def __repr__(self) -> str:
        return f"<class {self.class_info.name}#{self.uid}>"


def mj_repr(value) -> str:
    """Render a runtime value the way MJ's ``print`` statement shows it."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    return str(value)
