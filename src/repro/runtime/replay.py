"""Schedule record/replay — the DejaVu role (Section 2.6).

The paper pairs its on-the-fly detector with the DejaVu record/replay
platform: rare races are caught cheaply online, and the expensive
FullRace reconstruction runs offline against a *replayed* execution.
MJ's scheduler is deterministic given its decision sequence, so
record/replay here is exact and lightweight:

* :class:`RecordingPolicy` wraps any policy and logs every scheduling
  decision (the chosen thread id per step) into a
  :class:`ScheduleTrace`;
* :class:`ReplayPolicy` re-executes a trace, step for step, raising
  :class:`ReplayDivergence` if the program's runnable set no longer
  matches the recorded choice (e.g. the source changed).

Combined with :class:`~repro.runtime.events.RecordingSink` and the
:class:`~repro.detector.reference.ReferenceDetector`, this gives the
paper's full post-mortem workflow: detect online with the optimized
detector, then replay the same schedule and enumerate ``FullRace``
offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.errors import MJRuntimeError
from .scheduler import SchedulingPolicy, ThreadState


@dataclass
class ScheduleTrace:
    """A recorded sequence of scheduling decisions."""

    choices: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.choices)


class RecordingPolicy(SchedulingPolicy):
    """Wraps a policy, recording every decision it makes."""

    def __init__(self, inner: SchedulingPolicy):
        self.inner = inner
        self.trace = ScheduleTrace()

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        chosen = self.inner.choose(runnable)
        self.trace.choices.append(chosen.thread_id)
        return chosen

    def pick_waiter(self, waiters: list[int]) -> int:
        chosen = self.inner.pick_waiter(waiters)
        self.trace.choices.append(chosen)
        return chosen


class ReplayDivergence(MJRuntimeError):
    """The execution being replayed no longer matches the trace."""


class ReplayPolicy(SchedulingPolicy):
    """Replays a recorded schedule decision-for-decision."""

    def __init__(self, trace: ScheduleTrace):
        self._trace = trace
        self._position = 0

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        if self._position >= len(self._trace.choices):
            raise ReplayDivergence(
                f"schedule trace exhausted after {self._position} steps "
                f"but the program is still running"
            )
        wanted = self._trace.choices[self._position]
        self._position += 1
        for thread in runnable:
            if thread.thread_id == wanted:
                return thread
        runnable_ids = sorted(t.thread_id for t in runnable)
        raise ReplayDivergence(
            f"at step {self._position - 1} the trace chose thread "
            f"{wanted}, but only {runnable_ids} are runnable — the "
            f"program or its inputs changed since recording"
        )

    def pick_waiter(self, waiters: list[int]) -> int:
        if self._position >= len(self._trace.choices):
            raise ReplayDivergence(
                f"schedule trace exhausted after {self._position} decisions "
                f"but the program still needs a wakeup choice"
            )
        wanted = self._trace.choices[self._position]
        self._position += 1
        if wanted in waiters:
            return wanted
        raise ReplayDivergence(
            f"at decision {self._position - 1} the trace woke thread "
            f"{wanted}, but only {sorted(waiters)} are waiting — the "
            f"program or its inputs changed since recording"
        )

    @property
    def steps_replayed(self) -> int:
        return self._position


class FallbackReplayPolicy(SchedulingPolicy):
    """Replays a trace *prefix*, then hands over to a fallback policy.

    Unlike :class:`ReplayPolicy` this never raises
    :class:`ReplayDivergence`: when the trace is exhausted, or the
    recorded choice is no longer runnable (the program was edited — the
    difflab shrinker's case), the fallback policy decides instead.
    That makes truncated traces usable as schedule *hints*, which is
    what delta-debugging a schedule needs: a shrunk prefix either still
    steers the program into the failure or the candidate is rejected.
    """

    def __init__(self, trace: ScheduleTrace, fallback: SchedulingPolicy = None):
        from .scheduler import RoundRobinPolicy

        self._trace = trace
        self._position = 0
        self.fallback = fallback if fallback is not None else RoundRobinPolicy()
        #: Steps decided by the trace (vs. delegated to the fallback).
        self.replayed_steps = 0
        self.fallback_steps = 0

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        if self._position < len(self._trace.choices):
            wanted = self._trace.choices[self._position]
            self._position += 1
            for thread in runnable:
                if thread.thread_id == wanted:
                    self.replayed_steps += 1
                    return thread
        self.fallback_steps += 1
        return self.fallback.choose(runnable)

    def pick_waiter(self, waiters: list[int]) -> int:
        if self._position < len(self._trace.choices):
            wanted = self._trace.choices[self._position]
            self._position += 1
            if wanted in waiters:
                self.replayed_steps += 1
                return wanted
        self.fallback_steps += 1
        return self.fallback.pick_waiter(waiters)


def record_run(resolved, sink=None, inner_policy=None, **run_kwargs):
    """Execute once while recording the schedule; returns
    ``(RunResult, ScheduleTrace)``."""
    from .interpreter import run_program
    from .scheduler import RoundRobinPolicy

    policy = RecordingPolicy(
        inner_policy if inner_policy is not None else RoundRobinPolicy()
    )
    result = run_program(resolved, sink=sink, policy=policy, **run_kwargs)
    return result, policy.trace


def replay_run(resolved, trace: ScheduleTrace, sink=None, **run_kwargs):
    """Re-execute under a recorded schedule; returns the RunResult."""
    from .interpreter import run_program

    return run_program(
        resolved, sink=sink, policy=ReplayPolicy(trace), **run_kwargs
    )
