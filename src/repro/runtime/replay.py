"""Schedule record/replay — the DejaVu role (Section 2.6).

The paper pairs its on-the-fly detector with the DejaVu record/replay
platform: rare races are caught cheaply online, and the expensive
FullRace reconstruction runs offline against a *replayed* execution.
MJ's scheduler is deterministic given its decision sequence, so
record/replay here is exact and lightweight:

* :class:`RecordingPolicy` wraps any policy and logs every scheduling
  decision (the chosen thread id per step) into a
  :class:`ScheduleTrace`;
* :class:`ReplayPolicy` re-executes a trace, step for step, raising
  :class:`ReplayDivergence` if the program's runnable set no longer
  matches the recorded choice (e.g. the source changed).

Combined with :class:`~repro.runtime.events.RecordingSink` and the
:class:`~repro.detector.reference.ReferenceDetector`, this gives the
paper's full post-mortem workflow: detect online with the optimized
detector, then replay the same schedule and enumerate ``FullRace``
offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.errors import MJRuntimeError
from .scheduler import SchedulingPolicy, ThreadState


@dataclass
class ScheduleTrace:
    """A recorded sequence of scheduling decisions."""

    choices: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.choices)


class RecordingPolicy(SchedulingPolicy):
    """Wraps a policy, recording every decision it makes."""

    def __init__(self, inner: SchedulingPolicy):
        self.inner = inner
        self.trace = ScheduleTrace()

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        chosen = self.inner.choose(runnable)
        self.trace.choices.append(chosen.thread_id)
        return chosen

    def pick_waiter(self, waiters: list[int]) -> int:
        chosen = self.inner.pick_waiter(waiters)
        self.trace.choices.append(chosen)
        return chosen


class ReplayDivergence(MJRuntimeError):
    """The execution being replayed no longer matches the trace."""


class TraceExhausted(ReplayDivergence):
    """The trace and the replayed execution consumed different numbers
    of decisions.

    Raised mid-run when the program needs a decision the trace no longer
    has, and by :meth:`ReplayPolicy.verify_exhausted` when the program
    *finished* with recorded decisions left over — the previously silent
    direction of the mismatch (a shorter replay is just as diverged as a
    longer one; both mean the program changed since recording).
    """


class ReplayPolicy(SchedulingPolicy):
    """Replays a recorded schedule decision-for-decision."""

    def __init__(self, trace: ScheduleTrace):
        self._trace = trace
        self._position = 0

    def _next_decision(self, needed_for: str) -> int:
        """Consume and return the next recorded decision.

        Both decision kinds (scheduling choices and wakeup picks) draw
        from the same interleaved sequence, so exhaustion is checked in
        exactly one place.
        """
        if self._position >= len(self._trace.choices):
            raise TraceExhausted(
                f"schedule trace exhausted after {self._position} "
                f"decision(s) but the program still needs {needed_for}"
            )
        wanted = self._trace.choices[self._position]
        self._position += 1
        return wanted

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        wanted = self._next_decision("a scheduling choice")
        for thread in runnable:
            if thread.thread_id == wanted:
                return thread
        runnable_ids = sorted(t.thread_id for t in runnable)
        raise ReplayDivergence(
            f"at step {self._position - 1} the trace chose thread "
            f"{wanted}, but only {runnable_ids} are runnable — the "
            f"program or its inputs changed since recording"
        )

    def pick_waiter(self, waiters: list[int]) -> int:
        wanted = self._next_decision("a wakeup choice")
        if wanted in waiters:
            return wanted
        raise ReplayDivergence(
            f"at decision {self._position - 1} the trace woke thread "
            f"{wanted}, but only {sorted(waiters)} are waiting — the "
            f"program or its inputs changed since recording"
        )

    def verify_exhausted(self) -> None:
        """Assert the finished run consumed the whole trace.

        Call after the replayed execution completes (``replay_run`` does
        this for every engine).  Leftover decisions mean the replay
        finished *early* relative to the recording — a divergence the
        per-step checks cannot see.
        """
        remaining = len(self._trace.choices) - self._position
        if remaining > 0:
            raise TraceExhausted(
                f"replayed execution finished after {self._position} "
                f"decision(s) but the trace recorded "
                f"{len(self._trace.choices)} — {remaining} decision(s) "
                f"left over; the program or its inputs changed since "
                f"recording"
            )

    @property
    def steps_replayed(self) -> int:
        return self._position


class FallbackReplayPolicy(SchedulingPolicy):
    """Replays a trace *prefix*, then hands over to a fallback policy.

    Unlike :class:`ReplayPolicy` this never raises
    :class:`ReplayDivergence`: when the trace is exhausted, or the
    recorded choice is no longer runnable (the program was edited — the
    difflab shrinker's case), the fallback policy decides instead.
    That makes truncated traces usable as schedule *hints*, which is
    what delta-debugging a schedule needs: a shrunk prefix either still
    steers the program into the failure or the candidate is rejected.
    """

    def __init__(self, trace: ScheduleTrace, fallback: SchedulingPolicy = None):
        from .scheduler import RoundRobinPolicy

        self._trace = trace
        self._position = 0
        self.fallback = fallback if fallback is not None else RoundRobinPolicy()
        #: Steps decided by the trace (vs. delegated to the fallback).
        self.replayed_steps = 0
        self.fallback_steps = 0

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        if self._position < len(self._trace.choices):
            wanted = self._trace.choices[self._position]
            self._position += 1
            for thread in runnable:
                if thread.thread_id == wanted:
                    self.replayed_steps += 1
                    return thread
        self.fallback_steps += 1
        return self.fallback.choose(runnable)

    def pick_waiter(self, waiters: list[int]) -> int:
        if self._position < len(self._trace.choices):
            wanted = self._trace.choices[self._position]
            self._position += 1
            if wanted in waiters:
                self.replayed_steps += 1
                return wanted
        self.fallback_steps += 1
        return self.fallback.pick_waiter(waiters)


def record_run(
    resolved, sink=None, inner_policy=None, engine="ast", **run_kwargs
):
    """Execute once while recording the schedule; returns
    ``(RunResult, ScheduleTrace)``."""
    from . import engine_runner
    from .scheduler import RoundRobinPolicy

    policy = RecordingPolicy(
        inner_policy if inner_policy is not None else RoundRobinPolicy()
    )
    result = engine_runner(engine)(
        resolved, sink=sink, policy=policy, **run_kwargs
    )
    return result, policy.trace


def replay_run(
    resolved, trace: ScheduleTrace, sink=None, engine="ast", **run_kwargs
):
    """Re-execute under a recorded schedule; returns the RunResult.

    Raises :class:`TraceExhausted` when the replayed execution and the
    trace disagree about how many decisions the run takes — in either
    direction.  A trace recorded on one engine replays on any other:
    the engines make identical scheduling decisions.
    """
    from . import engine_runner

    policy = ReplayPolicy(trace)
    result = engine_runner(engine)(
        resolved, sink=sink, policy=policy, **run_kwargs
    )
    policy.verify_exhausted()
    return result
