"""The MJ interpreter — this reproduction's "instrumented executable".

The interpreter executes a resolved MJ program under a deterministic
scheduler (:mod:`repro.runtime.scheduler`), emitting the runtime event
stream (:mod:`repro.runtime.events`) that detectors consume.

Instrumentation is site-selective: the interpreter takes a set of
*traced* site ids (``None`` = every access site, the paper's default
when static analysis is skipped; the empty set = the "Base"
configuration of Table 2).  An access at an untraced site executes
normally but emits no :class:`AccessEvent` — exactly the effect of the
paper's instrumenter omitting the ``trace`` pseudo-instruction
(Section 6.1).

Threads are coroutines: every interpreter routine that can suspend is a
generator, and ``yield`` marks a preemption point.  Preemption points
sit before each memory access, at monitor operations, at thread
start/join, and at loop back-edges, so seeded schedulers can realize
many interleavings of the access/synchronization events — which is all
a lockset-based detector observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang import ast
from ..lang.errors import MJAssertionError, MJRuntimeError, SourceLocation
from ..lang.resolver import ARRAY_FIELD, ResolvedProgram
from .events import EventSink, ObjectKind
from .tiering import DEFAULT_TIERING, validate_tiering
from .scheduler import (
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    ThreadState,
    ThreadStatus,
)
from .values import (
    MJArray,
    MJClassObject,
    MJObject,
    Reference,
    _UidAllocator,
    mj_repr,
)


class _Return(Exception):
    """Internal control-flow signal for ``return`` statements."""

    def __init__(self, value):
        self.value = value


@dataclass
class Frame:
    """One activation record."""

    method: ast.MethodDecl
    locals: dict
    this: Optional[MJObject]


@dataclass
class RunResult:
    """Outcome of one complete program execution."""

    output: list[str]
    steps: int
    threads_created: int
    #: Accesses *executed* (traced or not) — the denominator for
    #: instrumentation-coverage statistics.
    accesses_executed: int
    #: Accesses actually emitted to the sink.
    accesses_emitted: int

    @property
    def output_text(self) -> str:
        return "\n".join(self.output)


class Interpreter:
    """Executes one resolved MJ program.

    Parameters
    ----------
    resolved:
        The resolved program.
    sink:
        Receiver of runtime events, or ``None`` to run uninstrumented.
    trace_sites:
        Site ids whose accesses emit events.  ``None`` traces every
        site.  Site ids of *transformed* programs are mapped through
        ``origin`` semantics by the caller (see
        :mod:`repro.instrument.planner`), not here.
    policy:
        Scheduling policy; defaults to round-robin with quantum 10.
    max_steps:
        Global scheduler step budget.
    tiering:
        Tiering mode (``"off"``/``"on"``; ``None`` = the
        ``REPRO_TIERING`` default).  Tiering is a compiled-engine
        feature (:mod:`repro.runtime.tiering`); the AST engine
        validates the mode and otherwise ignores it, so the process-wide
        env default is inert here.
    """

    def __init__(
        self,
        resolved: ResolvedProgram,
        sink: Optional[EventSink] = None,
        trace_sites: Optional[set[int]] = None,
        policy: Optional[SchedulingPolicy] = None,
        max_steps: int = 10_000_000,
        tiering: Optional[str] = None,
    ):
        self._resolved = resolved
        self._sink = sink
        self._tiering_mode = validate_tiering(
            DEFAULT_TIERING if tiering is None else tiering
        )
        #: Engaged TieringState — compiled engine only; the AST walker
        #: always runs untired.
        self._tiering = None
        # Pre-bound sink fast path: one call per emitted access.
        self._emit_parts = sink.on_access_parts if sink is not None else None
        self._trace_sites = trace_sites
        self._uids = _UidAllocator()
        self._class_objects: dict[str, MJClassObject] = {}
        self._scheduler = Scheduler(
            policy or RoundRobinPolicy(quantum=10), max_steps=max_steps
        )
        self._threads: list[ThreadState] = []
        self._started_objects: dict[int, ThreadState] = {}
        #: thread id -> stack of monitor uids in lexical sync order; used
        #: to enforce that ``wait`` targets the innermost held monitor.
        self._lock_stacks: dict[int, list[int]] = {}
        #: monitor uid -> waiting thread ids in arrival (FIFO) order.
        self._wait_sets: dict[int, list[int]] = {}
        #: thread ids released by a notify/barrier but not yet resumed.
        self._woken: set[int] = set()
        #: barrier uid -> {"parties", "arrived", "generation"} state.
        self._barriers: dict[int, dict] = {}
        #: object uid -> (ObjectKind, label), interned for emission.
        self._ref_labels: dict[int, tuple] = {}
        self.output: list[str] = []
        self.accesses_executed = 0
        self.accesses_emitted = 0

    # ------------------------------------------------------------------
    # Entry point.

    def run(self) -> RunResult:
        """Execute the program to completion and return the result."""
        main_thread = ThreadState(thread_id=0, name="main", body=None)
        main_thread.body = self._main_body(main_thread)
        self._threads.append(main_thread)
        self._scheduler.register(main_thread)
        steps = self._scheduler.run()
        if self._sink is not None:
            self._sink.on_run_end()
        return RunResult(
            output=self.output,
            steps=steps,
            threads_created=len(self._threads),
            accesses_executed=self.accesses_executed,
            accesses_emitted=self.accesses_emitted,
        )

    def _main_body(self, thread: ThreadState):
        method = self._resolved.main_method
        yield from self._invoke(method, None, [], thread)
        if self._sink is not None:
            self._sink.on_thread_end(thread.thread_id)

    # ------------------------------------------------------------------
    # Class objects and allocation.

    def _class_object(self, class_name: str) -> MJClassObject:
        obj = self._class_objects.get(class_name)
        if obj is None:
            info = self._resolved.class_info(class_name)
            obj = MJClassObject(self._uids, info)
            self._class_objects[class_name] = obj
        return obj

    def _static_owner_object(
        self, class_name: str, field_name: str, location: SourceLocation
    ) -> MJClassObject:
        """Canonicalize a static access to the declaring class's object."""
        info = self._resolved.class_info(class_name)
        owner = info.static_field_owner(field_name)
        if owner is None:
            raise MJRuntimeError(
                f"class {class_name!r} has no static field {field_name!r}",
                location,
            )
        return self._class_object(owner.name)

    # ------------------------------------------------------------------
    # Event emission.

    def _emit_access(
        self,
        ref: Reference,
        field_name: str,
        kind: ast.AccessKind,
        site_id: int,
        thread: ThreadState,
    ) -> None:
        self.accesses_executed += 1
        if self._sink is None:
            return
        if self._trace_sites is not None and site_id not in self._trace_sites:
            return
        # The (object kind, label) pair is a pure function of the
        # reference, so it is computed once per object, not per event —
        # the hot path does one dict probe instead of isinstance checks
        # and an f-string per access.
        uid = ref.uid
        cached = self._ref_labels.get(uid)
        if cached is None:
            if isinstance(ref, MJArray):
                cached = (ObjectKind.ARRAY, f"array#{uid}")
            elif isinstance(ref, MJClassObject):
                cached = (ObjectKind.CLASS, f"class {ref.class_info.name}")
            else:
                cached = (ObjectKind.INSTANCE, f"{ref.class_info.name}#{uid}")
            self._ref_labels[uid] = cached
        self.accesses_emitted += 1
        self._emit_parts(
            uid, field_name, thread.thread_id, kind, site_id, cached[0], cached[1]
        )

    # ------------------------------------------------------------------
    # Method invocation.

    def _invoke(self, method: ast.MethodDecl, receiver, args, thread: ThreadState):
        if len(args) != len(method.params):
            raise MJRuntimeError(
                f"{method.qualified_name} expects {len(method.params)} "
                f"argument(s), got {len(args)}",
                method.location,
            )
        frame = Frame(
            method=method,
            locals=dict(zip(method.params, args)),
            this=receiver,
        )
        try:
            yield from self._exec_block(method.body, frame, thread)
        except _Return as signal:
            return signal.value
        return None

    # ------------------------------------------------------------------
    # Statements.

    def _exec_block(self, block: ast.Block, frame: Frame, thread: ThreadState):
        for stmt in block.body:
            yield from self._exec_stmt(stmt, frame, thread)

    def _exec_stmt(self, stmt: ast.Stmt, frame: Frame, thread: ThreadState):
        # Same leaf-type dispatch as _eval, ordered by execution
        # frequency.
        node_type = type(stmt)
        if node_type is ast.AssignLocal:
            frame.locals[stmt.name] = yield from self._eval(stmt.value, frame, thread)
        elif node_type is ast.If:
            cond = yield from self._eval_bool(stmt.cond, frame, thread)
            if cond:
                yield from self._exec_block(stmt.then_block, frame, thread)
            elif stmt.else_block is not None:
                yield from self._exec_block(stmt.else_block, frame, thread)
        elif node_type is ast.While:
            while True:
                cond = yield from self._eval_bool(stmt.cond, frame, thread)
                if not cond:
                    break
                yield from self._exec_block(stmt.body, frame, thread)
                yield  # Loop back-edge preemption point.
        elif node_type is ast.FieldWrite:
            obj = yield from self._eval(stmt.obj, frame, thread)
            value = yield from self._eval(stmt.value, frame, thread)
            yield  # Preemption point before the write.
            self._write_field(obj, stmt.field_name, value, stmt, thread)
        elif node_type is ast.ArrayWrite:
            array = yield from self._eval(stmt.array, frame, thread)
            index = yield from self._eval(stmt.index, frame, thread)
            value = yield from self._eval(stmt.value, frame, thread)
            yield
            self._write_array(array, index, value, stmt, thread)
        elif node_type is ast.VarDecl:
            frame.locals[stmt.name] = yield from self._eval(stmt.init, frame, thread)
        elif node_type is ast.ExprStmt:
            yield from self._eval(stmt.expr, frame, thread)
        elif node_type is ast.StaticFieldWrite:
            value = yield from self._eval(stmt.value, frame, thread)
            owner = self._static_owner_object(
                stmt.class_name, stmt.field_name, stmt.location
            )
            yield
            self._emit_access(
                owner, stmt.field_name, ast.AccessKind.WRITE, stmt.site_id, thread
            )
            owner.statics[stmt.field_name] = value
        elif node_type is ast.Sync:
            yield from self._exec_sync(stmt, frame, thread)
        elif node_type is ast.Start:
            yield from self._exec_start(stmt, frame, thread)
        elif node_type is ast.Join:
            yield from self._exec_join(stmt, frame, thread)
        elif node_type is ast.Wait:
            yield from self._exec_wait(stmt, frame, thread)
        elif node_type is ast.Notify:
            yield from self._exec_notify(stmt, frame, thread)
        elif node_type is ast.Barrier:
            yield from self._exec_barrier(stmt, frame, thread)
        elif node_type is ast.Return:
            value = None
            if stmt.value is not None:
                value = yield from self._eval(stmt.value, frame, thread)
            raise _Return(value)
        elif node_type is ast.Print:
            value = yield from self._eval(stmt.value, frame, thread)
            self.output.append(mj_repr(value))
        elif node_type is ast.Assert:
            cond = yield from self._eval_bool(stmt.cond, frame, thread)
            if not cond:
                raise MJAssertionError("assertion failed", stmt.location)
        elif node_type is ast.Block:
            yield from self._exec_block(stmt, frame, thread)
        else:
            raise MJRuntimeError(
                f"unhandled statement {type(stmt).__name__}", stmt.location
            )

    def _write_field(self, obj, field_name, value, stmt, thread: ThreadState):
        if obj is None:
            raise MJRuntimeError(
                f"null dereference writing field {field_name!r}", stmt.location
            )
        if isinstance(obj, MJArray):
            raise MJRuntimeError(
                f"cannot write field {field_name!r} of an array", stmt.location
            )
        if isinstance(obj, MJClassObject):
            if field_name not in obj.statics:
                raise MJRuntimeError(
                    f"class {obj.class_info.name!r} has no static field "
                    f"{field_name!r}",
                    stmt.location,
                )
            self._emit_access(
                obj, field_name, ast.AccessKind.WRITE, stmt.site_id, thread
            )
            obj.statics[field_name] = value
            return
        if not isinstance(obj, MJObject):
            raise MJRuntimeError(
                f"cannot write field {field_name!r} of {mj_repr(obj)}",
                stmt.location,
            )
        if field_name not in obj.fields:
            raise MJRuntimeError(
                f"class {obj.class_info.name!r} has no field {field_name!r}",
                stmt.location,
            )
        self._emit_access(obj, field_name, ast.AccessKind.WRITE, stmt.site_id, thread)
        obj.fields[field_name] = value

    def _write_array(self, array, index, value, stmt, thread: ThreadState):
        if array is None:
            raise MJRuntimeError("null dereference in array write", stmt.location)
        if not isinstance(array, MJArray):
            raise MJRuntimeError(
                f"array write applied to {mj_repr(array)}", stmt.location
            )
        if not isinstance(index, int) or isinstance(index, bool):
            raise MJRuntimeError("array index must be an integer", stmt.location)
        if index < 0 or index >= len(array):
            raise MJRuntimeError(
                f"array index {index} out of bounds [0, {len(array)})",
                stmt.location,
            )
        self._emit_access(array, ARRAY_FIELD, ast.AccessKind.WRITE, stmt.site_id, thread)
        array.elements[index] = value

    # ------------------------------------------------------------------
    # Synchronization and threads.

    def _exec_sync(self, stmt: ast.Sync, frame: Frame, thread: ThreadState):
        lock = yield from self._eval(stmt.lock, frame, thread)
        if not isinstance(lock, Reference):
            raise MJRuntimeError(
                f"sync requires an object, got {mj_repr(lock)}", stmt.location
            )
        monitor = lock.monitor
        while not monitor.can_acquire(thread.thread_id):
            thread.status = ThreadStatus.BLOCKED
            thread.blocked_on = monitor
            yield
        outermost = monitor.acquire(thread.thread_id)
        if self._sink is not None:
            self._sink.on_monitor_enter(
                thread.thread_id, lock.uid, reentrant=not outermost
            )
        stack = self._lock_stacks.setdefault(thread.thread_id, [])
        stack.append(lock.uid)
        try:
            yield from self._exec_block(stmt.body, frame, thread)
        finally:
            stack.pop()
            # A thread torn down mid-wait (deadlock unwinding) already
            # released the monitor; only release when actually held.
            if monitor.owner == thread.thread_id:
                released = monitor.release(thread.thread_id)
                if self._sink is not None:
                    self._sink.on_monitor_exit(
                        thread.thread_id, lock.uid, reentrant=not released
                    )

    def _exec_start(self, stmt: ast.Start, frame: Frame, thread: ThreadState):
        obj = yield from self._eval(stmt.thread, frame, thread)
        if not isinstance(obj, MJObject):
            raise MJRuntimeError(
                f"start requires a thread object, got {mj_repr(obj)}",
                stmt.location,
            )
        run_method = obj.class_info.resolve_method("run")
        if run_method is None or run_method.is_static:
            raise MJRuntimeError(
                f"class {obj.class_info.name!r} has no 'run' method",
                stmt.location,
            )
        if obj.uid in self._started_objects:
            raise MJRuntimeError(
                f"thread object {obj!r} started twice", stmt.location
            )
        child_id = len(self._threads)
        child = ThreadState(
            thread_id=child_id, name=f"T{child_id}", body=None
        )
        child.body = self._child_body(child, obj, run_method)
        self._threads.append(child)
        self._started_objects[obj.uid] = child
        self._scheduler.register(child)
        if self._sink is not None:
            self._sink.on_thread_start(thread.thread_id, child_id)
        yield

    def _child_body(self, thread: ThreadState, obj: MJObject, run_method):
        yield from self._invoke(run_method, obj, [], thread)
        if self._sink is not None:
            self._sink.on_thread_end(thread.thread_id)

    def _exec_join(self, stmt: ast.Join, frame: Frame, thread: ThreadState):
        obj = yield from self._eval(stmt.thread, frame, thread)
        if not isinstance(obj, MJObject):
            raise MJRuntimeError(
                f"join requires a thread object, got {mj_repr(obj)}",
                stmt.location,
            )
        target = self._started_objects.get(obj.uid)
        if target is None:
            raise MJRuntimeError(
                "join on a thread object that was never started", stmt.location
            )
        while target.status is not ThreadStatus.FINISHED:
            thread.status = ThreadStatus.JOINING
            thread.joining_on = target
            yield
        if self._sink is not None:
            self._sink.on_thread_join(thread.thread_id, target.thread_id)

    # ------------------------------------------------------------------
    # Condition synchronization.

    def _exec_wait(self, stmt: ast.Wait, frame: Frame, thread: ThreadState):
        obj = yield from self._eval(stmt.target, frame, thread)
        if not isinstance(obj, Reference):
            raise MJRuntimeError(
                f"wait requires an object, got {mj_repr(obj)}", stmt.location
            )
        monitor = obj.monitor
        if monitor.owner != thread.thread_id:
            raise MJRuntimeError(
                "wait without holding the monitor", stmt.location
            )
        stack = self._lock_stacks.get(thread.thread_id)
        if not stack or stack[-1] != obj.uid:
            raise MJRuntimeError(
                "wait target must be the innermost held monitor "
                "(release/re-acquire would break lock nesting otherwise)",
                stmt.location,
            )
        # Release every reentrancy level; the lock nesting is restored
        # verbatim at wakeup, so enclosing sync blocks stay balanced.
        # The releases go out as ordinary monitor-exit events — the
        # detectors' locksets must not contain the released lock while
        # the thread waits.
        depth = monitor.count
        for _ in range(depth):
            freed = monitor.release(thread.thread_id)
            if self._sink is not None:
                self._sink.on_monitor_exit(
                    thread.thread_id, obj.uid, reentrant=not freed
                )
        self._wait_sets.setdefault(obj.uid, []).append(thread.thread_id)
        thread.status = ThreadStatus.WAITING
        thread.waiting_on = f"monitor #{obj.uid}"
        yield
        while thread.thread_id not in self._woken:
            yield
        self._woken.discard(thread.thread_id)
        thread.waiting_on = None
        while not monitor.can_acquire(thread.thread_id):
            thread.status = ThreadStatus.BLOCKED
            thread.blocked_on = monitor
            yield
        for _ in range(depth):
            outermost = monitor.acquire(thread.thread_id)
            if self._sink is not None:
                self._sink.on_monitor_enter(
                    thread.thread_id, obj.uid, reentrant=not outermost
                )
        # The wait event is emitted at wakeup-return, after the monitor
        # is held again, so in the log the releasing notify entry always
        # precedes it (happens-before replay sees edges causally).
        if self._sink is not None:
            self._sink.on_wait(thread.thread_id, obj.uid)

    def _exec_notify(self, stmt: ast.Notify, frame: Frame, thread: ThreadState):
        obj = yield from self._eval(stmt.target, frame, thread)
        if not isinstance(obj, Reference):
            keyword = "notifyall" if stmt.notify_all else "notify"
            raise MJRuntimeError(
                f"{keyword} requires an object, got {mj_repr(obj)}",
                stmt.location,
            )
        monitor = obj.monitor
        if monitor.owner != thread.thread_id:
            keyword = "notifyall" if stmt.notify_all else "notify"
            raise MJRuntimeError(
                f"{keyword} without holding the monitor", stmt.location
            )
        if self._sink is not None:
            self._sink.on_notify(thread.thread_id, obj.uid, stmt.notify_all)
        waiters = self._wait_sets.get(obj.uid)
        if not waiters:
            return  # Lost notification — a no-op, as in Java.
        if stmt.notify_all:
            released = list(waiters)
            waiters.clear()
        else:
            chosen = self._scheduler.policy.pick_waiter(list(waiters))
            waiters.remove(chosen)
            released = [chosen]
        for waiter_id in released:
            self._wake(waiter_id)

    def _wake(self, thread_id: int) -> None:
        self._woken.add(thread_id)
        state = self._threads[thread_id]
        state.status = ThreadStatus.RUNNABLE
        state.waiting_on = None

    def _exec_barrier(self, stmt: ast.Barrier, frame: Frame, thread: ThreadState):
        obj = yield from self._eval(stmt.target, frame, thread)
        if not isinstance(obj, Reference):
            raise MJRuntimeError(
                f"barrier requires an object, got {mj_repr(obj)}", stmt.location
            )
        parties = yield from self._eval(stmt.parties, frame, thread)
        if not isinstance(parties, int) or isinstance(parties, bool) or parties < 1:
            raise MJRuntimeError(
                f"barrier party count must be a positive integer, got "
                f"{mj_repr(parties)}",
                stmt.location,
            )
        state = self._barriers.get(obj.uid)
        if state is None or state["parties"] is None:
            # First arrival of this generation fixes the party count.
            if state is None:
                state = {"parties": parties, "arrived": [], "generation": 0}
                self._barriers[obj.uid] = state
            else:
                state["parties"] = parties
        elif state["parties"] != parties:
            raise MJRuntimeError(
                f"barrier #{obj.uid} party count mismatch: generation "
                f"{state['generation']} opened with {state['parties']}, "
                f"this arrival says {parties}",
                stmt.location,
            )
        # Arrival: an all-to-all rendezvous is encoded as one notifyall
        # per arrival plus one wait per release, giving happens-before
        # consumers the full edge set without a dedicated event tag.
        if self._sink is not None:
            self._sink.on_notify(thread.thread_id, obj.uid, True)
        state["arrived"].append(thread.thread_id)
        if len(state["arrived"]) == state["parties"]:
            # Last arriver trips the barrier and does not suspend.
            for waiter_id in state["arrived"]:
                if waiter_id != thread.thread_id:
                    self._wake(waiter_id)
            state["arrived"] = []
            state["parties"] = None  # Next generation re-fixes the count.
            state["generation"] += 1
            if self._sink is not None:
                self._sink.on_wait(thread.thread_id, obj.uid)
            return
        generation = state["generation"]
        thread.status = ThreadStatus.WAITING
        thread.waiting_on = (
            f"barrier #{obj.uid} generation {generation} "
            f"({len(state['arrived'])}/{state['parties']} arrived)"
        )
        yield
        while thread.thread_id not in self._woken:
            yield
        self._woken.discard(thread.thread_id)
        thread.waiting_on = None
        if self._sink is not None:
            self._sink.on_wait(thread.thread_id, obj.uid)

    # ------------------------------------------------------------------
    # Expressions.

    def _eval_bool(self, expr: ast.Expr, frame: Frame, thread: ThreadState):
        value = yield from self._eval(expr, frame, thread)
        if not isinstance(value, bool):
            raise MJRuntimeError(
                f"condition must be a boolean, got {mj_repr(value)}",
                expr.location,
            )
        return value

    def _eval(self, expr: ast.Expr, frame: Frame, thread: ThreadState):
        # Dispatch on the concrete node type (every node class is a
        # leaf, so identity comparison is equivalent to isinstance and
        # skips the mro walk).  Checks are ordered by how often each
        # node kind is evaluated in loop-heavy programs.
        node_type = type(expr)
        if node_type is ast.VarRef:
            if expr.name not in frame.locals:
                raise MJRuntimeError(
                    f"unbound variable {expr.name!r}", expr.location
                )
            return frame.locals[expr.name]
        if node_type is ast.Binary:
            return (yield from self._eval_binary(expr, frame, thread))
        if node_type is ast.FieldRead:
            obj = yield from self._eval(expr.obj, frame, thread)
            yield  # Preemption point before the read.
            return self._read_field(obj, expr, thread)
        if node_type is ast.ArrayRead:
            array = yield from self._eval(expr.array, frame, thread)
            index = yield from self._eval(expr.index, frame, thread)
            yield
            return self._read_array(array, index, expr, thread)
        if node_type is ast.IntLiteral:
            return expr.value
        if node_type is ast.ThisRef:
            return frame.this
        if node_type is ast.Call:
            return (yield from self._eval_call(expr, frame, thread))
        if node_type is ast.BoolLiteral:
            return expr.value
        if node_type is ast.StringLiteral:
            return expr.value
        if node_type is ast.NullLiteral:
            return None
        if node_type is ast.ClassRef:
            return self._class_object(expr.class_name)
        if node_type is ast.Unary:
            operand = yield from self._eval(expr.operand, frame, thread)
            if expr.op == "!":
                if not isinstance(operand, bool):
                    raise MJRuntimeError("'!' requires a boolean", expr.location)
                return not operand
            if expr.op == "-":
                if not isinstance(operand, int) or isinstance(operand, bool):
                    raise MJRuntimeError("unary '-' requires an integer", expr.location)
                return -operand
            raise MJRuntimeError(f"unknown unary operator {expr.op!r}", expr.location)
        if node_type is ast.StaticFieldRead:
            owner = self._static_owner_object(
                expr.class_name, expr.field_name, expr.location
            )
            yield
            self._emit_access(
                owner, expr.field_name, ast.AccessKind.READ, expr.site_id, thread
            )
            return owner.statics[expr.field_name]
        if node_type is ast.New:
            return (yield from self._eval_new(expr, frame, thread))
        if node_type is ast.NewArray:
            size = yield from self._eval(expr.size, frame, thread)
            if not isinstance(size, int) or isinstance(size, bool) or size < 0:
                raise MJRuntimeError(
                    "array size must be a non-negative integer", expr.location
                )
            array = MJArray(self._uids, size, expr.alloc_id)
            return array
        raise MJRuntimeError(
            f"unhandled expression {type(expr).__name__}", expr.location
        )

    def _read_field(self, obj, expr: ast.FieldRead, thread: ThreadState):
        if obj is None:
            raise MJRuntimeError(
                f"null dereference reading field {expr.field_name!r}",
                expr.location,
            )
        if isinstance(obj, MJArray):
            if expr.field_name == "length":
                # Array length is immutable: reading it is race-free by
                # construction, so it is not an access event.
                return len(obj)
            raise MJRuntimeError(
                f"arrays have no field {expr.field_name!r}", expr.location
            )
        if isinstance(obj, MJClassObject):
            if expr.field_name not in obj.statics:
                raise MJRuntimeError(
                    f"class {obj.class_info.name!r} has no static field "
                    f"{expr.field_name!r}",
                    expr.location,
                )
            self._emit_access(
                obj, expr.field_name, ast.AccessKind.READ, expr.site_id, thread
            )
            return obj.statics[expr.field_name]
        if not isinstance(obj, MJObject):
            raise MJRuntimeError(
                f"cannot read field {expr.field_name!r} of {mj_repr(obj)}",
                expr.location,
            )
        if expr.field_name not in obj.fields:
            raise MJRuntimeError(
                f"class {obj.class_info.name!r} has no field {expr.field_name!r}",
                expr.location,
            )
        self._emit_access(
            obj, expr.field_name, ast.AccessKind.READ, expr.site_id, thread
        )
        return obj.fields[expr.field_name]

    def _read_array(self, array, index, expr: ast.ArrayRead, thread: ThreadState):
        if array is None:
            raise MJRuntimeError("null dereference in array read", expr.location)
        if not isinstance(array, MJArray):
            raise MJRuntimeError(
                f"array read applied to {mj_repr(array)}", expr.location
            )
        if not isinstance(index, int) or isinstance(index, bool):
            raise MJRuntimeError("array index must be an integer", expr.location)
        if index < 0 or index >= len(array):
            raise MJRuntimeError(
                f"array index {index} out of bounds [0, {len(array)})",
                expr.location,
            )
        self._emit_access(array, ARRAY_FIELD, ast.AccessKind.READ, expr.site_id, thread)
        return array.elements[index]

    def _eval_binary(self, expr: ast.Binary, frame: Frame, thread: ThreadState):
        op = expr.op
        if op == "&&":
            left = yield from self._eval_bool(expr.left, frame, thread)
            if not left:
                return False
            return (yield from self._eval_bool(expr.right, frame, thread))
        if op == "||":
            left = yield from self._eval_bool(expr.left, frame, thread)
            if left:
                return True
            return (yield from self._eval_bool(expr.right, frame, thread))
        left = yield from self._eval(expr.left, frame, thread)
        right = yield from self._eval(expr.right, frame, thread)
        if op == "==":
            return self._equals(left, right)
        if op == "!=":
            return not self._equals(left, right)
        if op == "+" and isinstance(left, str):
            return left + mj_repr(right)
        if op == "+" and isinstance(right, str):
            return mj_repr(left) + right
        if op in ("+", "-", "*", "/", "%", "<", "<=", ">", ">="):
            for operand in (left, right):
                if not isinstance(operand, int) or isinstance(operand, bool):
                    raise MJRuntimeError(
                        f"operator {op!r} requires integers, got "
                        f"{mj_repr(left)} and {mj_repr(right)}",
                        expr.location,
                    )
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise MJRuntimeError("division by zero", expr.location)
                return int(left / right)  # Truncating, like Java.
            if op == "%":
                if right == 0:
                    raise MJRuntimeError("modulo by zero", expr.location)
                return left - int(left / right) * right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        raise MJRuntimeError(f"unknown operator {op!r}", expr.location)

    @staticmethod
    def _equals(left, right) -> bool:
        if isinstance(left, Reference) or isinstance(right, Reference):
            return left is right
        return left == right

    def _eval_new(self, expr: ast.New, frame: Frame, thread: ThreadState):
        info = self._resolved.class_info(expr.class_name)
        obj = MJObject(self._uids, info, expr.alloc_id)
        init = info.resolve_method("init")
        if init is not None and not init.is_static:
            args = []
            for arg in expr.args:
                args.append((yield from self._eval(arg, frame, thread)))
            yield from self._invoke(init, obj, args, thread)
        elif expr.args:
            raise MJRuntimeError(
                f"class {expr.class_name!r} has no 'init' method but "
                f"'new' was given arguments",
                expr.location,
            )
        return obj

    def _eval_call(self, expr: ast.Call, frame: Frame, thread: ThreadState):
        args = []
        receiver = None
        if expr.receiver is not None:
            receiver = yield from self._eval(expr.receiver, frame, thread)
        for arg in expr.args:
            args.append((yield from self._eval(arg, frame, thread)))
        if expr.is_static:
            info = self._resolved.class_info(expr.static_class)
            method = info.resolve_method(expr.method_name)
            if method is None or not method.is_static:
                raise MJRuntimeError(
                    f"no static method {expr.method_name!r} in class "
                    f"{expr.static_class!r}",
                    expr.location,
                )
            return (yield from self._invoke(method, None, args, thread))
        if receiver is None:
            raise MJRuntimeError(
                f"null dereference calling {expr.method_name!r}", expr.location
            )
        if not isinstance(receiver, MJObject):
            raise MJRuntimeError(
                f"cannot call method {expr.method_name!r} on {mj_repr(receiver)}",
                expr.location,
            )
        method = receiver.class_info.resolve_method(expr.method_name)
        if method is None or method.is_static:
            raise MJRuntimeError(
                f"class {receiver.class_info.name!r} has no instance method "
                f"{expr.method_name!r}",
                expr.location,
            )
        return (yield from self._invoke(method, receiver, args, thread))


def run_program(
    resolved: ResolvedProgram,
    sink: Optional[EventSink] = None,
    trace_sites: Optional[set[int]] = None,
    policy: Optional[SchedulingPolicy] = None,
    max_steps: int = 10_000_000,
    tiering: Optional[str] = None,
) -> RunResult:
    """Execute ``resolved`` once; convenience wrapper around Interpreter."""
    interpreter = Interpreter(
        resolved,
        sink=sink,
        trace_sites=trace_sites,
        policy=policy,
        max_steps=max_steps,
        tiering=tiering,
    )
    return interpreter.run()
