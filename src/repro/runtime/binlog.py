"""The binary at-rest event-log format (``MJBL``) and its mmap reader.

The schema-v3 tuple log (:mod:`repro.runtime.events`) is the in-memory
interchange format: compact to build, cheap to pickle, but every entry
is still a Python tuple holding Python ints and strings, and the whole
log must be resident to detect over it.  That caps post-mortem traces
at a few hundred thousand events.  This module is the at-rest
counterpart — the record-then-analyze split of PROBE's binary probe-log
arenas, applied to the paper's "create a log of access events …
perform the final datarace detection phase off-line" mode:

* :class:`BinaryLogSink` streams fixed-width struct-packed records to
  disk with bounded memory — no per-event Python object survives
  recording.  Field names and object labels are interned into a string
  table; records carry u32 string ids.
* :class:`BinaryLogReader` maps the file (``mmap``) and decodes records
  *lazily*: iterating yields ordinary schema-v3 tuples, and
  :meth:`BinaryLogReader.shard_entries` uses the per-block shard index
  to map only the byte ranges a shard's detector consumes —
  untouched blocks are never faulted in, let alone deserialized.
* :meth:`BinaryLogReader.replay_into` is the batched push-mode decoder
  detection actually runs on: per block it scans same-tag record runs
  and unpacks each run in one precompiled ``Struct.iter_unpack`` sweep
  straight into pre-bound sink methods, with the per-event Python call
  overhead hoisted out of the loop; sharded replay decodes the uid
  column first and unpacks the rest only for owned records.
* Format **v2** (``compress=`` on the sink) deflates each block with
  zlib as it is flushed, keeping the deflated bytes only when smaller;
  the index stores compressed spans, so sharded readers still inflate
  only owned + sync-bearing blocks.  v1 files remain fully readable.
* The ``tuple → binary → tuple`` round trip is lossless and is pinned
  by property tests; sharded detection over a mapped binary log merges
  to byte-identical reports vs the in-memory tuple path, for both
  format versions.

On-disk layout (all little-endian; full spec in ``docs/event_log.md``)::

    header      80 bytes: magic "MJBL", version, section offsets,
                record/access counts, records CRC-32
    records     back-to-back fixed-width records, one per event;
                per-kind layouts (access 28B, enter/exit/wait/notify
                16B, start/join 12B, end 8B)
    strings     u32 count, then (u32 length, utf-8 bytes) per string
    index       u32 block count, u32 records-per-block, then one
                40-byte entry per block: byte span, record/access/sync
                counts, a uid-partition bitmap (uid % 64) and a
                has-sync flag

The index is what makes sharded reads sub-linear in file size: shard
``k`` of ``s`` must decode a block only if the block contains sync
events (replicated to every shard) or its partition bitmap intersects
the residues ``uid % 64`` that shard ``k`` can own.  For power-of-two
shard counts the bitmap discriminates exactly; for odd counts it
degrades gracefully to a full scan (every partition may own every
shard) without ever dropping an event.

Validation is structural and O(1): the header carries the section
offsets, record count, and a records CRC-32, so a mapped read needs no
O(n) pre-scan (the satellite contract — tuple logs pay a
``validate_entries`` pass at every trust boundary; binary logs are
checked once at :meth:`BinaryLogReader.open` time against the file
size and magic, and corruption inside the record region surfaces as a
:class:`~repro.runtime.events.LogSchemaError` naming the byte offset).
"""

from __future__ import annotations

import io
import json
import mmap
import struct
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..lang.ast import AccessKind
from .events import (
    EventSink,
    LogCorruptError,
    LogNotFoundError,
    LogSchemaError,
    LogSchemaMismatchError,
    ObjectKind,
    RecordingSink,
    load_log,
    validate_entries,
)

MAGIC = b"MJBL"
BINLOG_VERSION = 1
#: Format v2: identical header, record, and string-table layouts, but
#: index entries carry a per-block compressed flag plus the raw
#: (inflated) byte length, and a block's on-disk span may hold
#: zlib-deflated record bytes.  v1 files remain fully readable — the
#: v1 index entry's zero pad bytes decode as "uncompressed" under the
#: unified entry layout.
BINLOG_VERSION_COMPRESSED = 2
_READABLE_VERSIONS = (BINLOG_VERSION, BINLOG_VERSION_COMPRESSED)

#: zlib level ``--compress`` uses when given without a value.
DEFAULT_COMPRESS_LEVEL = 6

#: Header: magic, version, header size, flags, record count, access
#: count, records offset/length, strings offset/length, index
#: offset/length, records CRC-32.
_HEADER = struct.Struct("<4sIIIQQQQQQQII")
HEADER_SIZE = _HEADER.size  # 80

_FLAG_FINALIZED = 1

#: Record tags (the first byte of every record).
TAG_ACCESS = 1
TAG_ENTER = 2
TAG_EXIT = 3
TAG_START = 4
TAG_END = 5
TAG_JOIN = 6
TAG_WAIT = 7
TAG_NOTIFY = 8

#: Per-kind fixed-width record layouts.  The schema-v3 tuple shapes
#: (8/4/3/2 columns) map directly: every non-tag column has a slot,
#: enums become u8 codes, strings become u32 string-table ids.
_ACCESS = struct.Struct("<BBBxQIIII")  # tag, kind, objkind, uid, thread, site, field, label
_MONITOR = struct.Struct("<BBxxIQ")    # tag, reentrant, thread, lock (ENTER/EXIT)
_START = struct.Struct("<BxxxII")      # tag, parent, child
_END = struct.Struct("<BxxxI")         # tag, thread
_JOIN = struct.Struct("<BxxxII")       # tag, joiner, joined
_WAIT = struct.Struct("<BxxxIQ")       # tag, thread, cond
_NOTIFY = struct.Struct("<BBxxIQ")     # tag, notify_all, thread, cond

_RECORD_SIZE = {
    TAG_ACCESS: _ACCESS.size,
    TAG_ENTER: _MONITOR.size,
    TAG_EXIT: _MONITOR.size,
    TAG_START: _START.size,
    TAG_END: _END.size,
    TAG_JOIN: _JOIN.size,
    TAG_WAIT: _WAIT.size,
    TAG_NOTIFY: _NOTIFY.size,
}

_KIND_CODE = {AccessKind.READ: 0, AccessKind.WRITE: 1}
_KIND_FROM = (AccessKind.READ, AccessKind.WRITE)
_OBJKIND_CODE = {ObjectKind.INSTANCE: 0, ObjectKind.ARRAY: 1, ObjectKind.CLASS: 2}
_OBJKIND_FROM = (ObjectKind.INSTANCE, ObjectKind.ARRAY, ObjectKind.CLASS)

#: Shard-index entry: byte offset, stored byte length, record count,
#: access count, sync count, uid-partition bitmap (uid % 64), has-sync
#: flag.  The v1 writer layout pads the tail with zeros; v2 reuses the
#: pad for a compressed flag and the raw (inflated) record-bytes length,
#: so one unified reader layout parses both versions (v1 entries decode
#: as compressed=0, raw_length=0 → "stored length").
_INDEX_ENTRY = struct.Struct("<QIIIIQB7x")
_INDEX_ENTRY_V2 = struct.Struct("<QIIIIQBB2xI")
assert _INDEX_ENTRY_V2.size == _INDEX_ENTRY.size
_INDEX_HEADER = struct.Struct("<II")  # block count, records per block

#: Column view of an access record that touches only the uid (bytes
#: 4..12 of the 28-byte layout): sharded batch decode scans this column
#: first and unpacks the other columns only for owned records.
_ACCESS_UID = struct.Struct("<4xQ16x")
assert _ACCESS_UID.size == _ACCESS.size

#: Chunk size for the streaming CRC pass in :meth:`BinaryLogReader.verify`.
_VERIFY_CHUNK = 1 << 20

#: How many uid partitions the block bitmaps track.  64 residues fit a
#: single u64; shard counts whose gcd with 64 exceeds 1 (all even
#: counts, exactly the power-of-two counts used in practice) get
#: selective block mapping.
UID_PARTITIONS = 64

DEFAULT_RECORDS_PER_BLOCK = 4096


class BinaryLogSink(EventSink):
    """Streams the event stream to disk as ``MJBL`` with bounded memory.

    A drop-in :class:`~repro.runtime.events.EventSink`: attach it to any
    engine run (or :func:`write_binary_log` an existing tuple log
    through it) and every event becomes one fixed-width record appended
    to an in-memory block buffer that is flushed to disk at block
    boundaries.  State that grows with the *trace* — the per-event
    tuples of :class:`~repro.runtime.events.RecordingSink` — is never
    held; what is held is bounded by the *program*: the string table
    (distinct field names and object labels) and the 40-bytes-per-4096-
    events block index.

    ``on_run_end`` finalizes the file (string table, index, header
    patch); :meth:`close` does the same for streams that end without a
    run-end event.  Both are idempotent.

    ``compress`` selects the format version: ``None`` (default) writes
    format v1, byte-identical to earlier builds.  Any zlib level 0–9
    writes format v2; levels 1–9 deflate each block as it is flushed
    and keep the deflated bytes only when they are actually smaller
    (the per-block flag in the index records which form is stored), so
    an incompressible block costs nothing.  Level 0 writes v2 without
    ever compressing.  Writer memory stays bounded either way: one
    block buffer, the string table, and 40 index bytes per block.
    """

    def __init__(
        self,
        path: Union[str, Path],
        records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
        compress: Optional[int] = None,
    ) -> None:
        if records_per_block < 1:
            raise ValueError("records_per_block must be positive")
        if compress is not None and not 0 <= compress <= 9:
            raise ValueError("compress must be a zlib level between 0 and 9")
        self.path = Path(path)
        self.records_per_block = records_per_block
        self.compress = compress
        self.version = (
            BINLOG_VERSION if compress is None else BINLOG_VERSION_COMPRESSED
        )
        self._file: Optional[io.BufferedWriter] = open(self.path, "wb")
        # A *provisional* header: real magic and version, finalized
        # flag clear, every section zero.  A recording that crashes
        # before close() leaves a file that is still recognizably MJBL,
        # so readers diagnose "never finalized (header flags at byte
        # offset 12)" instead of falling through magic detection into a
        # misleading "neither binary nor JSON" error.
        self._file.write(
            _HEADER.pack(
                MAGIC, self.version, HEADER_SIZE, 0,
                0, 0, HEADER_SIZE, 0, 0, 0, 0, 0, 0,
            )
        )
        self._buffer = bytearray()
        self._strings: dict[str, int] = {}
        self._index = bytearray()
        self._crc = 0
        self._records_length = 0
        self.record_count = 0
        self.access_count = 0
        # Per-block accumulators.
        self._block_offset = HEADER_SIZE
        self._block_records = 0
        self._block_accesses = 0
        self._block_syncs = 0
        self._block_partitions = 0
        self._block_has_sync = False

    # -- string interning ------------------------------------------------

    def _intern(self, text: str) -> int:
        table = self._strings
        ident = table.get(text)
        if ident is None:
            table[text] = ident = len(table)
        return ident

    # -- block bookkeeping ----------------------------------------------

    def _end_block(self) -> None:
        raw_length = len(self._buffer)
        payload = self._buffer
        compressed = 0
        if self.compress and raw_length:
            deflated = zlib.compress(bytes(self._buffer), self.compress)
            # Store the deflated form only when it actually wins: an
            # incompressible block stays raw and its flag stays clear.
            if len(deflated) < raw_length:
                payload = deflated
                compressed = 1
        length = len(payload)
        if self.version == BINLOG_VERSION:
            self._index += _INDEX_ENTRY.pack(
                self._block_offset,
                length,
                self._block_records,
                self._block_accesses,
                self._block_syncs,
                self._block_partitions,
                1 if self._block_has_sync else 0,
            )
        else:
            self._index += _INDEX_ENTRY_V2.pack(
                self._block_offset,
                length,
                self._block_records,
                self._block_accesses,
                self._block_syncs,
                self._block_partitions,
                1 if self._block_has_sync else 0,
                compressed,
                raw_length,
            )
        # The CRC covers the *stored* bytes, so verify() is one
        # zlib.crc32 pass over the on-disk record region for both
        # versions — no inflation needed to integrity-check a v2 file.
        self._crc = zlib.crc32(payload, self._crc)
        self._file.write(payload)
        self._records_length += length
        self._block_offset += length
        self._buffer.clear()
        self._block_records = 0
        self._block_accesses = 0
        self._block_syncs = 0
        self._block_partitions = 0
        self._block_has_sync = False

    def _bump(self, access: bool, uid: int = 0) -> None:
        self.record_count += 1
        self._block_records += 1
        if access:
            self.access_count += 1
            self._block_accesses += 1
            self._block_partitions |= 1 << (uid % UID_PARTITIONS)
        else:
            self._block_syncs += 1
            self._block_has_sync = True
        if self._block_records >= self.records_per_block:
            self._end_block()

    # -- EventSink -------------------------------------------------------

    def on_access_parts(
        self, object_uid, field, thread_id, kind, site_id, object_kind, object_label
    ) -> None:
        self._buffer += _ACCESS.pack(
            TAG_ACCESS,
            _KIND_CODE[kind],
            _OBJKIND_CODE[object_kind],
            object_uid,
            thread_id,
            site_id,
            self._intern(field),
            self._intern(object_label),
        )
        self._bump(True, object_uid)

    def on_access(self, event) -> None:
        location = event.location
        self.on_access_parts(
            location.object_uid,
            location.field,
            event.thread_id,
            event.kind,
            event.site_id,
            event.object_kind,
            event.object_label,
        )

    def on_monitor_enter(self, thread_id, lock_uid, reentrant) -> None:
        self._buffer += _MONITOR.pack(TAG_ENTER, 1 if reentrant else 0, thread_id, lock_uid)
        self._bump(False)

    def on_monitor_exit(self, thread_id, lock_uid, reentrant) -> None:
        self._buffer += _MONITOR.pack(TAG_EXIT, 1 if reentrant else 0, thread_id, lock_uid)
        self._bump(False)

    def on_thread_start(self, parent_id, child_id) -> None:
        self._buffer += _START.pack(TAG_START, parent_id, child_id)
        self._bump(False)

    def on_thread_end(self, thread_id) -> None:
        self._buffer += _END.pack(TAG_END, thread_id)
        self._bump(False)

    def on_thread_join(self, joiner_id, joined_id) -> None:
        self._buffer += _JOIN.pack(TAG_JOIN, joiner_id, joined_id)
        self._bump(False)

    def on_wait(self, thread_id, cond_uid) -> None:
        self._buffer += _WAIT.pack(TAG_WAIT, thread_id, cond_uid)
        self._bump(False)

    def on_notify(self, thread_id, cond_uid, notify_all) -> None:
        self._buffer += _NOTIFY.pack(TAG_NOTIFY, 1 if notify_all else 0, thread_id, cond_uid)
        self._bump(False)

    def on_run_end(self) -> None:
        self.close()

    # -- finalization ----------------------------------------------------

    def close(self) -> None:
        """Flush the tail block, write string table + index, patch the
        header.  Idempotent."""
        if self._file is None:
            return
        if self._block_records or not self._index:
            self._end_block()
        strings_offset = HEADER_SIZE + self._records_length
        strings = bytearray(struct.pack("<I", len(self._strings)))
        for text in self._strings:  # dicts preserve insertion order = id order
            data = text.encode("utf-8")
            strings += struct.pack("<I", len(data))
            strings += data
        self._file.write(strings)
        index_offset = strings_offset + len(strings)
        block_count = len(self._index) // _INDEX_ENTRY.size
        index = _INDEX_HEADER.pack(block_count, self.records_per_block) + bytes(self._index)
        self._file.write(index)
        self._file.seek(0)
        self._file.write(
            _HEADER.pack(
                MAGIC,
                self.version,
                HEADER_SIZE,
                _FLAG_FINALIZED,
                self.record_count,
                self.access_count,
                HEADER_SIZE,
                self._records_length,
                strings_offset,
                len(strings),
                index_offset,
                len(index),
                self._crc,
            )
        )
        self._file.close()
        self._file = None

    def __enter__(self) -> "BinaryLogSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BlockSpan:
    """One index block's byte span, as the shard planner hands it out.

    ``length`` is the *stored* (on-disk) span; ``raw_length`` is the
    inflated record-bytes length — equal for raw blocks, larger for
    v2-compressed blocks.
    """

    __slots__ = ("offset", "length", "records", "accesses", "syncs",
                 "partitions", "has_sync", "compressed", "raw_length")

    def __init__(self, offset, length, records, accesses, syncs, partitions,
                 has_sync, compressed=0, raw_length=0):
        self.offset = offset
        self.length = length
        self.records = records
        self.accesses = accesses
        self.syncs = syncs
        self.partitions = partitions
        self.has_sync = bool(has_sync)
        self.compressed = bool(compressed)
        self.raw_length = raw_length if raw_length else length


def _shard_partition_mask(shard: int, shards: int) -> int:
    """Bitmap of the residues ``uid % UID_PARTITIONS`` that can hold a
    uid routed to ``shard`` (routing is ``uid % shards``).

    A uid in partition ``p`` has the form ``p + UID_PARTITIONS·t``; it
    lands in ``shard`` iff ``p ≡ shard (mod gcd(UID_PARTITIONS,
    shards))``.  Power-of-two shard counts therefore discriminate
    exactly; odd counts collapse to the full mask (no block can be
    ruled out) — conservative, never lossy.
    """
    import math

    g = math.gcd(UID_PARTITIONS, shards)
    mask = 0
    for p in range(UID_PARTITIONS):
        if (p - shard) % g == 0:
            mask |= 1 << p
    return mask


class BinaryLogReader:
    """Zero-copy view over an ``MJBL`` file.

    Opening validates the header *structurally* (magic, version,
    finalized flag, section offsets vs the actual file size) in O(1) —
    no record scan.  Record decoding happens lazily, per iteration;
    :meth:`shard_entries` skips whole blocks the shard cannot own.
    """

    def __init__(self, path: Union[str, Path], verify: bool = False) -> None:
        self.path = Path(path)
        try:
            size = self.path.stat().st_size
        except OSError as error:
            raise LogNotFoundError(
                f"{self.path}: cannot open binary event log ({error})"
            ) from error
        if size < HEADER_SIZE:
            raise LogCorruptError(
                f"{self.path}: {size}-byte file is smaller than the "
                f"{HEADER_SIZE}-byte MJBL header",
                offset=size,
            )
        self._file = open(self.path, "rb")
        try:
            self._map: mmap.mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            self._file.close()
            raise
        try:
            (
                magic,
                version,
                header_size,
                flags,
                self.record_count,
                self.access_count,
                self.records_offset,
                self.records_length,
                self.strings_offset,
                self.strings_length,
                self.index_offset,
                self.index_length,
                self.records_crc32,
            ) = _HEADER.unpack_from(self._map, 0)
            if magic != MAGIC:
                raise LogCorruptError(
                    f"{self.path}: bad magic {magic!r} at byte offset 0 "
                    f"(expected {MAGIC!r}; not a binary event log)",
                    offset=0,
                )
            if version not in _READABLE_VERSIONS:
                raise LogSchemaMismatchError(
                    f"{self.path}: binary log version {version}, but this "
                    f"build reads versions {BINLOG_VERSION} and "
                    f"{BINLOG_VERSION_COMPRESSED} — re-record the "
                    f"execution with the current build"
                )
            self.version = version
            if not flags & _FLAG_FINALIZED:
                raise LogCorruptError(
                    f"{self.path}: log was never finalized (recording "
                    f"crashed or the sink was not closed) — header flags "
                    f"at byte offset 12 lack the finalized bit",
                    offset=12,
                )
            end = self.index_offset + self.index_length
            if (
                header_size != HEADER_SIZE
                or self.records_offset != HEADER_SIZE
                or self.strings_offset != HEADER_SIZE + self.records_length
                or self.index_offset != self.strings_offset + self.strings_length
                or end != size
            ):
                raise LogCorruptError(
                    f"{self.path}: truncated or corrupt binary log — "
                    f"header promises sections ending at byte offset "
                    f"{end}, file has {size} bytes",
                    offset=min(end, size),
                )
        except Exception:
            self.close()
            raise
        self._strings: Optional[list[str]] = None
        self._blocks: Optional[list[BlockSpan]] = None
        if verify:
            self.verify()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if getattr(self, "_map", None) is not None:
            try:
                self._map.close()
            except BufferError:
                # A propagating decode error's traceback frame still
                # exports memoryview slices of the map.  Drop our
                # reference instead of masking that error; the mapping
                # closes when the last view dies.
                pass
            self._map = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "BinaryLogReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def sync_count(self) -> int:
        return self.record_count - self.access_count

    def size_bytes(self) -> int:
        return self.index_offset + self.index_length

    # -- sections --------------------------------------------------------

    @property
    def strings(self) -> list[str]:
        """The interned string table (decoded once, on first use)."""
        if self._strings is None:
            view = self._map
            offset = self.strings_offset
            end = offset + self.strings_length
            if self.strings_length < 4:
                # Without this guard a crafted zero-length (but offset-
                # consistent) string section would let unpack_from read
                # into the index region — or raise a bare struct.error.
                raise LogCorruptError(
                    f"{self.path}: string table at byte offset {offset} "
                    f"is {self.strings_length} bytes — too short for "
                    f"its 4-byte count header",
                    offset=offset,
                )
            (count,) = struct.unpack_from("<I", view, offset)
            offset += 4
            table: list[str] = []
            for _ in range(count):
                if offset + 4 > end:
                    raise LogCorruptError(
                        f"{self.path}: string table truncated at byte "
                        f"offset {offset}",
                        offset=offset,
                    )
                (length,) = struct.unpack_from("<I", view, offset)
                offset += 4
                if offset + length > end:
                    raise LogCorruptError(
                        f"{self.path}: string table truncated at byte "
                        f"offset {offset}",
                        offset=offset,
                    )
                table.append(view[offset : offset + length].decode("utf-8"))
                offset += length
            self._strings = table
        return self._strings

    @property
    def blocks(self) -> list[BlockSpan]:
        """The shard index (decoded once, on first use)."""
        if self._blocks is None:
            view = self._map
            offset = self.index_offset
            if self.index_length < _INDEX_HEADER.size:
                # Same hazard as the string table: a consistent-looking
                # header with a short index section would otherwise hit
                # unpack_from past the mapped file — a bare struct.error
                # with no file context.
                raise LogCorruptError(
                    f"{self.path}: shard index at byte offset {offset} "
                    f"is {self.index_length} bytes — too short for its "
                    f"{_INDEX_HEADER.size}-byte header",
                    offset=offset,
                )
            block_count, self.records_per_block = _INDEX_HEADER.unpack_from(view, offset)
            offset += _INDEX_HEADER.size
            expected = self.index_offset + self.index_length
            if offset + block_count * _INDEX_ENTRY.size != expected:
                raise LogCorruptError(
                    f"{self.path}: shard index truncated at byte offset "
                    f"{offset} ({block_count} blocks promised)",
                    offset=offset,
                )
            v1 = self.version == BINLOG_VERSION
            blocks = []
            for _ in range(block_count):
                span = BlockSpan(*_INDEX_ENTRY_V2.unpack_from(view, offset))
                if v1 and span.compressed:
                    # A v1 header over v2-style index entries: either a
                    # relabeled file or a corrupted index.  Refusing
                    # beats inflating bytes a v1 reader must treat as
                    # raw records.
                    raise LogCorruptError(
                        f"{self.path}: index entry at byte offset "
                        f"{offset} carries the v2 compressed-block flag "
                        f"but the header says format v1 — log corrupted "
                        f"(or relabeled)",
                        offset=offset,
                    )
                blocks.append(span)
                offset += _INDEX_ENTRY_V2.size
            self._blocks = blocks
        return self._blocks

    def verify(self) -> None:
        """Full integrity check: CRC-32 over the record region.

        The O(n) scan mapped reads deliberately skip; ``repro
        log-stats`` and the corruption tests call it explicitly.  The
        CRC covers the *stored* bytes, so one pass serves v1 and v2
        files alike without inflating anything.  Streamed in chunks
        over zero-copy memoryview slices of the map — slicing the mmap
        object itself would materialize the whole region as a bytes
        copy, the regression pinned by the peak-RSS test.
        """
        view = memoryview(self._map)
        position = self.records_offset
        stop = self.records_offset + self.records_length
        actual = 0
        while position < stop:
            actual = zlib.crc32(
                view[position : min(position + _VERIFY_CHUNK, stop)], actual
            )
            position += _VERIFY_CHUNK
        if actual != self.records_crc32:
            raise LogCorruptError(
                f"{self.path}: record region CRC mismatch "
                f"(header says {self.records_crc32:#010x}, bytes hash to "
                f"{actual:#010x}) — log corrupted between byte offsets "
                f"{self.records_offset} and "
                f"{self.records_offset + self.records_length}",
                offset=self.records_offset,
            )

    def validate_blocks(self) -> None:
        """Inflate-check every compressed block, without decoding records.

        The service's submit trust boundary calls this so damage inside
        a deflated block is a request-time 422 naming the block's byte
        offset, not a failed job discovered by polling.  v1 files and
        raw blocks cost nothing; each inflated copy is dropped as soon
        as its length checks out.
        """
        for block in self.blocks:
            if block.compressed:
                self._block_view(block)

    # -- decoding --------------------------------------------------------

    def _block_view(self, block: BlockSpan):
        """The decodable record bytes of one block, as ``(buffer, start,
        stop, anchor)``.

        Raw blocks hand back the mmap itself with absolute offsets and
        ``anchor=None`` — zero-copy, and decode errors name exact file
        offsets.  Compressed blocks inflate their stored span; decode
        errors inside the inflated bytes are anchored to the block's
        file offset (the finest-grained position that exists on disk).
        """
        if not block.compressed:
            return self._map, block.offset, block.offset + block.length, None
        stored = memoryview(self._map)[
            block.offset : block.offset + block.length
        ]
        try:
            raw = zlib.decompress(stored)
        except zlib.error as error:
            raise LogCorruptError(
                f"{self.path}: compressed block at byte offset "
                f"{block.offset} fails to inflate ({error}) — log "
                f"corrupted",
                offset=block.offset,
            ) from None
        if len(raw) != block.raw_length:
            raise LogCorruptError(
                f"{self.path}: compressed block at byte offset "
                f"{block.offset} inflated to {len(raw)} bytes, but its "
                f"index entry promises {block.raw_length} — log "
                f"corrupted",
                offset=block.offset,
            )
        return raw, 0, len(raw), block.offset

    # Decode-error constructors, shared by the scalar and columnar
    # paths so both raise identical diagnostics.  ``anchor`` is None
    # when ``position`` is an exact file offset (raw blocks), or the
    # enclosing compressed block's file offset otherwise.

    def _unknown_tag(self, tag: int, position: int, anchor) -> LogCorruptError:
        if anchor is None:
            return LogCorruptError(
                f"{self.path}: unknown record tag {tag} at byte "
                f"offset {position} — log corrupted",
                offset=position,
            )
        return LogCorruptError(
            f"{self.path}: unknown record tag {tag} inside the "
            f"compressed block at byte offset {anchor} — log corrupted",
            offset=anchor,
        )

    def _truncated_record(
        self, tag: int, position: int, end: int, anchor
    ) -> LogCorruptError:
        if anchor is None:
            return LogCorruptError(
                f"{self.path}: record at byte offset {position} "
                f"(tag {tag}) extends past the record region end "
                f"{end} — log truncated",
                offset=position,
            )
        return LogCorruptError(
            f"{self.path}: record (tag {tag}) extends past the end of "
            f"the compressed block at byte offset {anchor} — log "
            f"corrupted",
            offset=anchor,
        )

    def _bad_access(self, position: int, anchor) -> LogCorruptError:
        if anchor is None:
            return LogCorruptError(
                f"{self.path}: access record at byte offset "
                f"{position} references an out-of-range string "
                f"or enum code — log corrupted",
                offset=position,
            )
        return LogCorruptError(
            f"{self.path}: access record inside the compressed block "
            f"at byte offset {anchor} references an out-of-range "
            f"string or enum code — log corrupted",
            offset=anchor,
        )

    def _locate_bad_access(self, view, position: int, end: int, anchor):
        """Re-scan an access run that tripped an IndexError in the
        batched decode and raise pointing at the first bad record."""
        strings = len(self.strings)
        size = _ACCESS.size
        while position + size <= end:
            (_, kind, objkind, _, _, _, field_id, label_id) = (
                _ACCESS.unpack_from(view, position)
            )
            if (
                kind >= len(_KIND_FROM)
                or objkind >= len(_OBJKIND_FROM)
                or field_id >= strings
                or label_id >= strings
            ):
                break
            position += size
        raise self._bad_access(position, anchor)

    def _decode_span(
        self,
        view,
        offset: int,
        end: int,
        shard: int = -1,
        shards: int = 1,
        anchor: Optional[int] = None,
    ) -> Iterator[tuple]:
        """Decode ``view[offset:end]`` into schema-v3 tuples, one record
        per step (the scalar reference path).

        With ``shard >= 0``, access records whose uid is not routed to
        that shard are skipped after reading only their uid — the lazy
        path sharded detection rides on.
        """
        strings = self.strings
        access = RecordingSink.ACCESS
        enter = RecordingSink.ENTER
        exit_ = RecordingSink.EXIT
        start = RecordingSink.START
        end_tag = RecordingSink.END
        join = RecordingSink.JOIN
        wait = RecordingSink.WAIT
        notify = RecordingSink.NOTIFY
        sizes = _RECORD_SIZE
        while offset < end:
            tag = view[offset]
            size = sizes.get(tag)
            if size is None:
                raise self._unknown_tag(tag, offset, anchor)
            if offset + size > end:
                raise self._truncated_record(tag, offset, end, anchor)
            if tag == TAG_ACCESS:
                (_, kind, objkind, uid, thread, site, field_id, label_id) = (
                    _ACCESS.unpack_from(view, offset)
                )
                if shard < 0 or uid % shards == shard:
                    try:
                        yield (
                            access,
                            uid,
                            strings[field_id],
                            thread,
                            _KIND_FROM[kind],
                            site,
                            _OBJKIND_FROM[objkind],
                            strings[label_id],
                        )
                    except IndexError:
                        raise self._bad_access(offset, anchor) from None
            elif tag == TAG_ENTER or tag == TAG_EXIT:
                (_, reentrant, thread, lock) = _MONITOR.unpack_from(view, offset)
                yield (
                    enter if tag == TAG_ENTER else exit_,
                    thread,
                    lock,
                    bool(reentrant),
                )
            elif tag == TAG_START:
                (_, parent, child) = _START.unpack_from(view, offset)
                yield (start, parent, child)
            elif tag == TAG_END:
                (_, thread) = _END.unpack_from(view, offset)
                yield (end_tag, thread)
            elif tag == TAG_JOIN:
                (_, joiner, joined) = _JOIN.unpack_from(view, offset)
                yield (join, joiner, joined)
            elif tag == TAG_WAIT:
                (_, thread, cond) = _WAIT.unpack_from(view, offset)
                yield (wait, thread, cond)
            else:
                (_, notify_all, thread, cond) = _NOTIFY.unpack_from(view, offset)
                yield (notify, thread, cond, bool(notify_all))
            offset += size

    def entries(self) -> Iterator[tuple]:
        """Lazily decode the whole log as schema-v3 tuples, in order."""
        if self.version == BINLOG_VERSION:
            # v1 record regions are one contiguous raw span; decoding
            # straight off the map needs no index round trip.
            return self._decode_span(
                self._map,
                self.records_offset,
                self.records_offset + self.records_length,
            )
        return self._entries_by_block()

    def _entries_by_block(self) -> Iterator[tuple]:
        for block in self.blocks:
            view, start, stop, anchor = self._block_view(block)
            yield from self._decode_span(view, start, stop, anchor=anchor)

    def __iter__(self) -> Iterator[tuple]:
        return self.entries()

    def __len__(self) -> int:
        return self.record_count

    def shard_blocks(self, shard: int, shards: int) -> list[BlockSpan]:
        """The blocks shard ``shard`` of ``shards`` must consume: every
        block holding sync events, plus blocks whose uid-partition
        bitmap intersects the shard's residue mask."""
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards} shards")
        mask = _shard_partition_mask(shard, shards)
        return [
            block
            for block in self.blocks
            if block.has_sync or block.partitions & mask
        ]

    def shard_entries(self, shard: int, shards: int) -> Iterator[tuple]:
        """Lazily decode exactly the entries shard ``shard`` consumes:
        its own access events plus every sync event, in log order —
        the same stream :func:`repro.detector.sharded.partition_log`
        would hand that shard, without materializing the others."""
        for block in self.shard_blocks(shard, shards):
            view, start, stop, anchor = self._block_view(block)
            yield from self._decode_span(view, start, stop, shard, shards, anchor)

    # -- batched push decode ---------------------------------------------

    def replay_into(self, sink: EventSink, shard: int = -1, shards: int = 1) -> None:
        """Drive ``sink`` with the decoded stream, block-batched — the
        hot path post-mortem detection rides on.

        Delivers exactly the events :meth:`entries` (``shard < 0``) or
        :meth:`shard_entries` would yield, closing with
        :meth:`~repro.runtime.events.EventSink.on_run_end`, but decodes
        *columnar*: each block is scanned once for same-tag record
        runs, and every run is unpacked in one precompiled
        ``Struct.iter_unpack`` sweep and dispatched through pre-bound
        sink methods.  No schema-v3 tuples, no generator protocol, no
        per-record ``unpack_from`` call — the per-event Python overhead
        is hoisted out of the loop.  Sharded replay reads the uid
        *column* of an access run first and unpacks the remaining
        columns only for owned records, so replicated sync-bearing
        blocks cost non-owning shards little more than a uid scan.
        """
        if shard < 0:
            blocks = self.blocks
            filtered = False
        else:
            blocks = self.shard_blocks(shard, shards)
            filtered = shards > 1
        strings = self.strings
        kinds = _KIND_FROM
        objkinds = _OBJKIND_FROM
        sizes = _RECORD_SIZE
        on_access = sink.on_access_parts
        on_enter = sink.on_monitor_enter
        on_exit = sink.on_monitor_exit
        on_start = sink.on_thread_start
        on_end = sink.on_thread_end
        on_join = sink.on_thread_join
        on_wait = sink.on_wait
        on_notify = sink.on_notify
        unpack_access = _ACCESS.iter_unpack
        unpack_uid = _ACCESS_UID.iter_unpack
        unpack_one = _ACCESS.unpack_from
        monitor_one = _MONITOR.unpack_from
        start_one = _START.unpack_from
        end_one = _END.unpack_from
        join_one = _JOIN.unpack_from
        wait_one = _WAIT.unpack_from
        notify_one = _NOTIFY.unpack_from
        access_size = _ACCESS.size
        monitor_size = _MONITOR.size
        for block in blocks:
            buffer, position, stop, anchor = self._block_view(block)
            view = memoryview(buffer)
            # A block whose index entry promises no sync records is one
            # access run end to end: validate its tag column in a single
            # strided C sweep and skip per-record scanning entirely.  A
            # block that fails the check (index/record disagreement)
            # falls through to the scanned loop for exact diagnostics.
            whole = (
                block.syncs == 0
                and (stop - position) % access_size == 0
                and bytes(view[position:stop:access_size]).count(TAG_ACCESS)
                == (stop - position) // access_size
            )
            while position < stop:
                tag = view[position]
                if tag == TAG_ACCESS:
                    if whole:
                        run_end = stop
                    else:
                        run_end = position + access_size
                        while run_end < stop and view[run_end] == TAG_ACCESS:
                            run_end += access_size
                        if run_end > stop:
                            raise self._truncated_record(
                                tag, run_end - access_size, stop, anchor
                            )
                    segment = view[position:run_end]
                    try:
                        if not filtered:
                            for (_, kind, objkind, uid, thread, site,
                                 field_id, label_id) in unpack_access(segment):
                                on_access(
                                    uid, strings[field_id], thread,
                                    kinds[kind], site, objkinds[objkind],
                                    strings[label_id],
                                )
                        elif run_end - position < 64 * access_size:
                            # Short run: one full sweep with the uid test
                            # inline beats a separate uid-column pass.
                            for rec in unpack_access(segment):
                                if rec[3] % shards == shard:
                                    (_, kind, objkind, uid, thread, site,
                                     field_id, label_id) = rec
                                    on_access(
                                        uid, strings[field_id], thread,
                                        kinds[kind], site, objkinds[objkind],
                                        strings[label_id],
                                    )
                        else:
                            # Long run: read the uid column first and
                            # touch the other columns only for owned
                            # records — a non-owning shard skips the run
                            # at uid-scan cost.
                            owned = [
                                i
                                for i, (uid,) in enumerate(unpack_uid(segment))
                                if uid % shards == shard
                            ]
                            if len(owned) * access_size == len(segment):
                                for (_, kind, objkind, uid, thread, site,
                                     field_id, label_id) in unpack_access(
                                         segment):
                                    on_access(
                                        uid, strings[field_id], thread,
                                        kinds[kind], site, objkinds[objkind],
                                        strings[label_id],
                                    )
                            else:
                                for i in owned:
                                    (_, kind, objkind, uid, thread, site,
                                     field_id, label_id) = unpack_one(
                                        segment, i * access_size)
                                    on_access(
                                        uid, strings[field_id], thread,
                                        kinds[kind], site, objkinds[objkind],
                                        strings[label_id],
                                    )
                    except IndexError:
                        self._locate_bad_access(view, position, run_end, anchor)
                    position = run_end
                elif tag == TAG_ENTER:
                    # Sync runs average a record or two; decoding them in
                    # place skips the slice + iter_unpack setup a run
                    # sweep would pay per record anyway.
                    if position + monitor_size > stop:
                        raise self._truncated_record(tag, position, stop, anchor)
                    _, reentrant, thread, lock = monitor_one(view, position)
                    on_enter(thread, lock, reentrant != 0)
                    position += monitor_size
                elif tag == TAG_EXIT:
                    if position + monitor_size > stop:
                        raise self._truncated_record(tag, position, stop, anchor)
                    _, reentrant, thread, lock = monitor_one(view, position)
                    on_exit(thread, lock, reentrant != 0)
                    position += monitor_size
                else:
                    size = sizes.get(tag)
                    if size is None:
                        raise self._unknown_tag(tag, position, anchor)
                    if position + size > stop:
                        raise self._truncated_record(tag, position, stop, anchor)
                    if tag == TAG_START:
                        _, parent, child = start_one(view, position)
                        on_start(parent, child)
                    elif tag == TAG_END:
                        (_, thread) = end_one(view, position)
                        on_end(thread)
                    elif tag == TAG_JOIN:
                        _, joiner, joined = join_one(view, position)
                        on_join(joiner, joined)
                    elif tag == TAG_WAIT:
                        _, thread, cond = wait_one(view, position)
                        on_wait(thread, cond)
                    else:
                        _, notify_all, thread, cond = notify_one(view, position)
                        on_notify(thread, cond, notify_all != 0)
                    position += size
        sink.on_run_end()

    def replay_sharded_into(self, sinks) -> None:
        """Decode the log once and demultiplex it across ``sinks``:
        access events go to ``sinks[uid % len(sinks)]`` alone, sync
        events to every sink, in log order — each sink receives exactly
        the stream :meth:`replay_into` with ``(shard, shards)`` would
        deliver, at one decode pass instead of one per shard.  Serial
        mapped sharding rides on this: without parallel workers the
        per-shard decode passes are pure repetition, and a single
        columnar sweep with the ``uid % shards`` dispatch inlined in the
        unpack loop feeds every shard detector at unfiltered-decode
        cost.  Closes with ``on_run_end`` on every sink.
        """
        shards = len(sinks)
        strings = self.strings
        kinds = _KIND_FROM
        objkinds = _OBJKIND_FROM
        sizes = _RECORD_SIZE
        on_access = [sink.on_access_parts for sink in sinks]
        on_enter = [sink.on_monitor_enter for sink in sinks]
        on_exit = [sink.on_monitor_exit for sink in sinks]
        on_start = [sink.on_thread_start for sink in sinks]
        on_end = [sink.on_thread_end for sink in sinks]
        on_join = [sink.on_thread_join for sink in sinks]
        on_wait = [sink.on_wait for sink in sinks]
        on_notify = [sink.on_notify for sink in sinks]
        unpack_access = _ACCESS.iter_unpack
        monitor_one = _MONITOR.unpack_from
        start_one = _START.unpack_from
        end_one = _END.unpack_from
        join_one = _JOIN.unpack_from
        wait_one = _WAIT.unpack_from
        notify_one = _NOTIFY.unpack_from
        access_size = _ACCESS.size
        monitor_size = _MONITOR.size
        for block in self.blocks:
            buffer, position, stop, anchor = self._block_view(block)
            view = memoryview(buffer)
            # Same single-sweep tag-column validation as replay_into.
            whole = (
                block.syncs == 0
                and (stop - position) % access_size == 0
                and bytes(view[position:stop:access_size]).count(TAG_ACCESS)
                == (stop - position) // access_size
            )
            while position < stop:
                tag = view[position]
                if tag == TAG_ACCESS:
                    if whole:
                        run_end = stop
                    else:
                        run_end = position + access_size
                        while run_end < stop and view[run_end] == TAG_ACCESS:
                            run_end += access_size
                        if run_end > stop:
                            raise self._truncated_record(
                                tag, run_end - access_size, stop, anchor
                            )
                    segment = view[position:run_end]
                    try:
                        for (_, kind, objkind, uid, thread, site,
                             field_id, label_id) in unpack_access(segment):
                            on_access[uid % shards](
                                uid, strings[field_id], thread,
                                kinds[kind], site, objkinds[objkind],
                                strings[label_id],
                            )
                    except IndexError:
                        self._locate_bad_access(view, position, run_end, anchor)
                    position = run_end
                elif tag == TAG_ENTER:
                    if position + monitor_size > stop:
                        raise self._truncated_record(tag, position, stop, anchor)
                    _, reentrant, thread, lock = monitor_one(view, position)
                    for handler in on_enter:
                        handler(thread, lock, reentrant != 0)
                    position += monitor_size
                elif tag == TAG_EXIT:
                    if position + monitor_size > stop:
                        raise self._truncated_record(tag, position, stop, anchor)
                    _, reentrant, thread, lock = monitor_one(view, position)
                    for handler in on_exit:
                        handler(thread, lock, reentrant != 0)
                    position += monitor_size
                else:
                    size = sizes.get(tag)
                    if size is None:
                        raise self._unknown_tag(tag, position, anchor)
                    if position + size > stop:
                        raise self._truncated_record(tag, position, stop, anchor)
                    if tag == TAG_START:
                        _, parent, child = start_one(view, position)
                        for handler in on_start:
                            handler(parent, child)
                    elif tag == TAG_END:
                        (_, thread) = end_one(view, position)
                        for handler in on_end:
                            handler(thread)
                    elif tag == TAG_JOIN:
                        _, joiner, joined = join_one(view, position)
                        for handler in on_join:
                            handler(joiner, joined)
                    elif tag == TAG_WAIT:
                        _, thread, cond = wait_one(view, position)
                        for handler in on_wait:
                            handler(thread, cond)
                    else:
                        _, notify_all, thread, cond = notify_one(view, position)
                        for handler in on_notify:
                            handler(thread, cond, notify_all != 0)
                    position += size
        for sink in sinks:
            sink.on_run_end()

    # -- statistics ------------------------------------------------------

    def stats(self) -> dict:
        """Event counts by kind plus distinct-entity counts (one lazy
        pass over the mapped records)."""
        return collect_log_stats(self.entries())

    def block_stats(self) -> dict:
        """Per-block occupancy and (v2) compression summary: block
        count, fill relative to ``records_per_block``, and how many
        stored bytes the deflated blocks saved."""
        blocks = self.blocks  # also decodes self.records_per_block
        per_block = self.records_per_block
        stored = sum(block.length for block in blocks)
        raw = sum(block.raw_length for block in blocks)
        fills = [block.records / per_block for block in blocks] or [0.0]
        return {
            "blocks": len(blocks),
            "records_per_block": per_block,
            "mean_fill": round(sum(fills) / len(fills), 4),
            "min_fill": round(min(fills), 4),
            "max_fill": round(max(fills), 4),
            "compressed_blocks": sum(1 for b in blocks if b.compressed),
            "stored_record_bytes": stored,
            "raw_record_bytes": raw,
            "compression_ratio": round(raw / stored, 3) if stored else 1.0,
        }


# ----------------------------------------------------------------------
# Format-agnostic helpers.


LogLike = Union[RecordingSink, Sequence[tuple], BinaryLogReader]


def as_log_entries(log: LogLike) -> Iterable[tuple]:
    """Normalize any log shape — :class:`RecordingSink`, raw tuple
    entries, or a mapped :class:`BinaryLogReader` — to an iterable of
    schema-v3 tuples.  The common adapter the detector, harness, and
    difflab boundaries accept either format through."""
    if isinstance(log, RecordingSink):
        return log.log
    if isinstance(log, BinaryLogReader):
        return log.entries()
    return log


@contextmanager
def temporary_binary_log(suffix: str = ".mjbl", dir=None):
    """A temp-file path that is *always* unlinked, even on error.

    ``NamedTemporaryFile(delete=False)`` + a manual ``unlink`` leaks
    whenever anything raises between close and unlink (and fights
    Windows-style locked-file semantics, since the writer reopens the
    file by name while the handle object still exists).  This context
    manager is the one shared shape: create the name eagerly with the
    handle already closed, yield the :class:`~pathlib.Path`, and
    guarantee removal in ``finally``.  The difflab round-trip axis, the
    harness post-mortem recorder, and the ``repro serve`` upload spool
    all route through it.
    """
    import os
    import tempfile

    descriptor, name = tempfile.mkstemp(suffix=suffix, dir=dir)
    os.close(descriptor)
    path = Path(name)
    try:
        yield path
    finally:
        path.unlink(missing_ok=True)


def write_binary_log(
    log: LogLike,
    path: Union[str, Path],
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
    compress: Optional[int] = None,
) -> Path:
    """Serialize any log shape to an ``MJBL`` file (the ``tuple →
    binary`` half of the round-trip contract).  ``compress`` selects
    the format exactly as on :class:`BinaryLogSink`: ``None`` → v1,
    a zlib level → v2."""
    from .events import replay_entries

    path = Path(path)
    with BinaryLogSink(path, records_per_block, compress=compress) as sink:
        replay_entries(as_log_entries(log), sink)
    return path


def read_binary_log(path: Union[str, Path]) -> list[tuple]:
    """Materialize an ``MJBL`` file as schema-v3 tuples (the ``binary →
    tuple`` half of the round-trip contract)."""
    with BinaryLogReader(path) as reader:
        return list(reader.entries())


def is_binary_log(path: Union[str, Path]) -> bool:
    """True if ``path`` starts with the ``MJBL`` magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def open_log(path: Union[str, Path]) -> LogLike:
    """Open an on-disk event log of either format, auto-detected by
    magic bytes.

    Returns a :class:`BinaryLogReader` for ``MJBL`` files, or the
    validated tuple entries for JSON logs produced by
    :func:`~repro.runtime.events.dump_log`.  Binary logs are validated
    structurally in O(1); tuple logs pay the one
    :func:`~repro.runtime.events.validate_entries` pass here — their
    single validation point — so downstream detection must not
    re-validate.
    """
    path = Path(path)
    if not path.exists():
        raise LogNotFoundError(f"{path}: event log not found")
    if is_binary_log(path):
        return BinaryLogReader(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise LogNotFoundError(
            f"{path}: cannot read event log ({error})"
        ) from error
    except UnicodeDecodeError as error:
        raise LogCorruptError(
            f"{path}: neither a binary event log (no MJBL magic at byte "
            f"offset 0) nor a JSON tuple log (not UTF-8 at byte offset "
            f"{error.start})",
            offset=error.start,
        ) from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise LogCorruptError(
            f"{path}: neither a binary event log (no MJBL magic at byte "
            f"offset 0) nor a JSON tuple log (JSON decode failed at "
            f"byte offset {error.pos}: {error.msg})",
            offset=error.pos,
        ) from error
    return load_log(payload)


def collect_log_stats(entries: Iterable[tuple]) -> dict:
    """One streaming pass of summary statistics over schema-v3 tuples:
    counts by kind and distinct locations / threads / locks / condition
    objects.  Works on any entry source, so ``repro log-stats`` serves
    both formats through it."""
    counts = {
        RecordingSink.ACCESS: 0,
        RecordingSink.ENTER: 0,
        RecordingSink.EXIT: 0,
        RecordingSink.START: 0,
        RecordingSink.END: 0,
        RecordingSink.JOIN: 0,
        RecordingSink.WAIT: 0,
        RecordingSink.NOTIFY: 0,
    }
    reads = writes = 0
    locations: set = set()
    threads: set = set()
    locks: set = set()
    conditions: set = set()
    access = RecordingSink.ACCESS
    for entry in entries:
        tag = entry[0]
        counts[tag] += 1
        if tag == access:
            locations.add((entry[1], entry[2]))
            threads.add(entry[3])
            if entry[4] is AccessKind.WRITE:
                writes += 1
            else:
                reads += 1
        elif tag in (RecordingSink.ENTER, RecordingSink.EXIT):
            threads.add(entry[1])
            locks.add(entry[2])
        elif tag == RecordingSink.START:
            threads.add(entry[1])
            threads.add(entry[2])
        elif tag in (RecordingSink.END, RecordingSink.WAIT, RecordingSink.NOTIFY):
            threads.add(entry[1])
            if tag != RecordingSink.END:
                conditions.add(entry[2])
        elif tag == RecordingSink.JOIN:
            threads.add(entry[1])
            threads.add(entry[2])
    total = sum(counts.values())
    return {
        "events": total,
        "counts": dict(counts),
        "reads": reads,
        "writes": writes,
        "distinct_locations": len(locations),
        "distinct_threads": len(threads),
        "distinct_locks": len(locks),
        "distinct_conditions": len(conditions),
    }


def estimate_binary_bytes(
    entries: Iterable[tuple],
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
) -> int:
    """Size in bytes the ``MJBL`` serialization of ``entries`` would
    occupy — record widths plus header, string table, and index —
    computed streaming, without writing anything.  The numerator of
    ``repro log-stats``'s size ratio for tuple-format inputs."""
    records = 0
    count = 0
    strings: set[str] = set()
    string_bytes = 0
    access = RecordingSink.ACCESS
    tag_of = {
        RecordingSink.ENTER: TAG_ENTER,
        RecordingSink.EXIT: TAG_EXIT,
        RecordingSink.START: TAG_START,
        RecordingSink.END: TAG_END,
        RecordingSink.JOIN: TAG_JOIN,
        RecordingSink.WAIT: TAG_WAIT,
        RecordingSink.NOTIFY: TAG_NOTIFY,
    }
    for entry in entries:
        count += 1
        if entry[0] == access:
            records += _ACCESS.size
            for text in (entry[2], entry[7]):
                if text not in strings:
                    strings.add(text)
                    string_bytes += 4 + len(text.encode("utf-8"))
        else:
            records += _RECORD_SIZE[tag_of[entry[0]]]
    blocks = max(1, -(-count // records_per_block))
    return (
        HEADER_SIZE
        + records
        + 4 + string_bytes
        + _INDEX_HEADER.size + blocks * _INDEX_ENTRY.size
    )


def tuple_log_json_bytes(entries: Iterable[tuple]) -> int:
    """Size in bytes of the JSON tuple-log serialization of ``entries``,
    computed streaming (no materialized payload) — the denominator of
    ``repro log-stats``'s tuple-vs-binary size ratio."""
    # Mirrors dump_log()'s shape: {"version": N, "entries": [...]}.
    size = len(f'{{"version": {RecordingSink.SCHEMA_VERSION}, "entries": [') + len("]}")
    first = True
    access = RecordingSink.ACCESS
    for entry in entries:
        if entry[0] == access:
            encoded = [entry[0], entry[1], entry[2], entry[3], entry[4].value,
                       entry[5], entry[6].value, entry[7]]
        else:
            encoded = list(entry)
        size += len(json.dumps(encoded)) + (0 if first else 2)
        first = False
    return size
