"""The binary at-rest event-log format (``MJBL``) and its mmap reader.

The schema-v3 tuple log (:mod:`repro.runtime.events`) is the in-memory
interchange format: compact to build, cheap to pickle, but every entry
is still a Python tuple holding Python ints and strings, and the whole
log must be resident to detect over it.  That caps post-mortem traces
at a few hundred thousand events.  This module is the at-rest
counterpart — the record-then-analyze split of PROBE's binary probe-log
arenas, applied to the paper's "create a log of access events …
perform the final datarace detection phase off-line" mode:

* :class:`BinaryLogSink` streams fixed-width struct-packed records to
  disk with bounded memory — no per-event Python object survives
  recording.  Field names and object labels are interned into a string
  table; records carry u32 string ids.
* :class:`BinaryLogReader` maps the file (``mmap``) and decodes records
  *lazily*: iterating yields ordinary schema-v3 tuples, and
  :meth:`BinaryLogReader.shard_entries` uses the per-block shard index
  to map only the byte ranges a shard's detector consumes —
  untouched blocks are never faulted in, let alone deserialized.
* The ``tuple → binary → tuple`` round trip is lossless and is pinned
  by property tests; sharded detection over a mapped binary log merges
  to byte-identical reports vs the in-memory tuple path.

On-disk layout (all little-endian; full spec in ``docs/event_log.md``)::

    header      80 bytes: magic "MJBL", version, section offsets,
                record/access counts, records CRC-32
    records     back-to-back fixed-width records, one per event;
                per-kind layouts (access 28B, enter/exit/wait/notify
                16B, start/join 12B, end 8B)
    strings     u32 count, then (u32 length, utf-8 bytes) per string
    index       u32 block count, u32 records-per-block, then one
                40-byte entry per block: byte span, record/access/sync
                counts, a uid-partition bitmap (uid % 64) and a
                has-sync flag

The index is what makes sharded reads sub-linear in file size: shard
``k`` of ``s`` must decode a block only if the block contains sync
events (replicated to every shard) or its partition bitmap intersects
the residues ``uid % 64`` that shard ``k`` can own.  For power-of-two
shard counts the bitmap discriminates exactly; for odd counts it
degrades gracefully to a full scan (every partition may own every
shard) without ever dropping an event.

Validation is structural and O(1): the header carries the section
offsets, record count, and a records CRC-32, so a mapped read needs no
O(n) pre-scan (the satellite contract — tuple logs pay a
``validate_entries`` pass at every trust boundary; binary logs are
checked once at :meth:`BinaryLogReader.open` time against the file
size and magic, and corruption inside the record region surfaces as a
:class:`~repro.runtime.events.LogSchemaError` naming the byte offset).
"""

from __future__ import annotations

import io
import json
import mmap
import struct
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from ..lang.ast import AccessKind
from .events import (
    EventSink,
    LogCorruptError,
    LogNotFoundError,
    LogSchemaError,
    LogSchemaMismatchError,
    ObjectKind,
    RecordingSink,
    load_log,
    validate_entries,
)

MAGIC = b"MJBL"
BINLOG_VERSION = 1

#: Header: magic, version, header size, flags, record count, access
#: count, records offset/length, strings offset/length, index
#: offset/length, records CRC-32.
_HEADER = struct.Struct("<4sIIIQQQQQQQII")
HEADER_SIZE = _HEADER.size  # 80

_FLAG_FINALIZED = 1

#: Record tags (the first byte of every record).
TAG_ACCESS = 1
TAG_ENTER = 2
TAG_EXIT = 3
TAG_START = 4
TAG_END = 5
TAG_JOIN = 6
TAG_WAIT = 7
TAG_NOTIFY = 8

#: Per-kind fixed-width record layouts.  The schema-v3 tuple shapes
#: (8/4/3/2 columns) map directly: every non-tag column has a slot,
#: enums become u8 codes, strings become u32 string-table ids.
_ACCESS = struct.Struct("<BBBxQIIII")  # tag, kind, objkind, uid, thread, site, field, label
_MONITOR = struct.Struct("<BBxxIQ")    # tag, reentrant, thread, lock (ENTER/EXIT)
_START = struct.Struct("<BxxxII")      # tag, parent, child
_END = struct.Struct("<BxxxI")         # tag, thread
_JOIN = struct.Struct("<BxxxII")       # tag, joiner, joined
_WAIT = struct.Struct("<BxxxIQ")       # tag, thread, cond
_NOTIFY = struct.Struct("<BBxxIQ")     # tag, notify_all, thread, cond

_RECORD_SIZE = {
    TAG_ACCESS: _ACCESS.size,
    TAG_ENTER: _MONITOR.size,
    TAG_EXIT: _MONITOR.size,
    TAG_START: _START.size,
    TAG_END: _END.size,
    TAG_JOIN: _JOIN.size,
    TAG_WAIT: _WAIT.size,
    TAG_NOTIFY: _NOTIFY.size,
}

_KIND_CODE = {AccessKind.READ: 0, AccessKind.WRITE: 1}
_KIND_FROM = (AccessKind.READ, AccessKind.WRITE)
_OBJKIND_CODE = {ObjectKind.INSTANCE: 0, ObjectKind.ARRAY: 1, ObjectKind.CLASS: 2}
_OBJKIND_FROM = (ObjectKind.INSTANCE, ObjectKind.ARRAY, ObjectKind.CLASS)

#: Shard-index entry: byte offset, byte length, record count, access
#: count, sync count, uid-partition bitmap (uid % 64), has-sync flag.
_INDEX_ENTRY = struct.Struct("<QIIIIQB7x")
_INDEX_HEADER = struct.Struct("<II")  # block count, records per block

#: How many uid partitions the block bitmaps track.  64 residues fit a
#: single u64; shard counts whose gcd with 64 exceeds 1 (all even
#: counts, exactly the power-of-two counts used in practice) get
#: selective block mapping.
UID_PARTITIONS = 64

DEFAULT_RECORDS_PER_BLOCK = 4096


class BinaryLogSink(EventSink):
    """Streams the event stream to disk as ``MJBL`` with bounded memory.

    A drop-in :class:`~repro.runtime.events.EventSink`: attach it to any
    engine run (or :func:`write_binary_log` an existing tuple log
    through it) and every event becomes one fixed-width record appended
    to an in-memory block buffer that is flushed to disk at block
    boundaries.  State that grows with the *trace* — the per-event
    tuples of :class:`~repro.runtime.events.RecordingSink` — is never
    held; what is held is bounded by the *program*: the string table
    (distinct field names and object labels) and the 40-bytes-per-4096-
    events block index.

    ``on_run_end`` finalizes the file (string table, index, header
    patch); :meth:`close` does the same for streams that end without a
    run-end event.  Both are idempotent.
    """

    def __init__(
        self,
        path: Union[str, Path],
        records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
    ) -> None:
        if records_per_block < 1:
            raise ValueError("records_per_block must be positive")
        self.path = Path(path)
        self.records_per_block = records_per_block
        self._file: Optional[io.BufferedWriter] = open(self.path, "wb")
        # A *provisional* header: real magic and version, finalized
        # flag clear, every section zero.  A recording that crashes
        # before close() leaves a file that is still recognizably MJBL,
        # so readers diagnose "never finalized (header flags at byte
        # offset 12)" instead of falling through magic detection into a
        # misleading "neither binary nor JSON" error.
        self._file.write(
            _HEADER.pack(
                MAGIC, BINLOG_VERSION, HEADER_SIZE, 0,
                0, 0, HEADER_SIZE, 0, 0, 0, 0, 0, 0,
            )
        )
        self._buffer = bytearray()
        self._strings: dict[str, int] = {}
        self._index = bytearray()
        self._crc = 0
        self._records_length = 0
        self.record_count = 0
        self.access_count = 0
        # Per-block accumulators.
        self._block_offset = HEADER_SIZE
        self._block_records = 0
        self._block_accesses = 0
        self._block_syncs = 0
        self._block_partitions = 0
        self._block_has_sync = False

    # -- string interning ------------------------------------------------

    def _intern(self, text: str) -> int:
        table = self._strings
        ident = table.get(text)
        if ident is None:
            table[text] = ident = len(table)
        return ident

    # -- block bookkeeping ----------------------------------------------

    def _end_block(self) -> None:
        length = len(self._buffer)
        self._index += _INDEX_ENTRY.pack(
            self._block_offset,
            length,
            self._block_records,
            self._block_accesses,
            self._block_syncs,
            self._block_partitions,
            1 if self._block_has_sync else 0,
        )
        self._crc = zlib.crc32(self._buffer, self._crc)
        self._file.write(self._buffer)
        self._records_length += length
        self._block_offset += length
        self._buffer.clear()
        self._block_records = 0
        self._block_accesses = 0
        self._block_syncs = 0
        self._block_partitions = 0
        self._block_has_sync = False

    def _bump(self, access: bool, uid: int = 0) -> None:
        self.record_count += 1
        self._block_records += 1
        if access:
            self.access_count += 1
            self._block_accesses += 1
            self._block_partitions |= 1 << (uid % UID_PARTITIONS)
        else:
            self._block_syncs += 1
            self._block_has_sync = True
        if self._block_records >= self.records_per_block:
            self._end_block()

    # -- EventSink -------------------------------------------------------

    def on_access_parts(
        self, object_uid, field, thread_id, kind, site_id, object_kind, object_label
    ) -> None:
        self._buffer += _ACCESS.pack(
            TAG_ACCESS,
            _KIND_CODE[kind],
            _OBJKIND_CODE[object_kind],
            object_uid,
            thread_id,
            site_id,
            self._intern(field),
            self._intern(object_label),
        )
        self._bump(True, object_uid)

    def on_access(self, event) -> None:
        location = event.location
        self.on_access_parts(
            location.object_uid,
            location.field,
            event.thread_id,
            event.kind,
            event.site_id,
            event.object_kind,
            event.object_label,
        )

    def on_monitor_enter(self, thread_id, lock_uid, reentrant) -> None:
        self._buffer += _MONITOR.pack(TAG_ENTER, 1 if reentrant else 0, thread_id, lock_uid)
        self._bump(False)

    def on_monitor_exit(self, thread_id, lock_uid, reentrant) -> None:
        self._buffer += _MONITOR.pack(TAG_EXIT, 1 if reentrant else 0, thread_id, lock_uid)
        self._bump(False)

    def on_thread_start(self, parent_id, child_id) -> None:
        self._buffer += _START.pack(TAG_START, parent_id, child_id)
        self._bump(False)

    def on_thread_end(self, thread_id) -> None:
        self._buffer += _END.pack(TAG_END, thread_id)
        self._bump(False)

    def on_thread_join(self, joiner_id, joined_id) -> None:
        self._buffer += _JOIN.pack(TAG_JOIN, joiner_id, joined_id)
        self._bump(False)

    def on_wait(self, thread_id, cond_uid) -> None:
        self._buffer += _WAIT.pack(TAG_WAIT, thread_id, cond_uid)
        self._bump(False)

    def on_notify(self, thread_id, cond_uid, notify_all) -> None:
        self._buffer += _NOTIFY.pack(TAG_NOTIFY, 1 if notify_all else 0, thread_id, cond_uid)
        self._bump(False)

    def on_run_end(self) -> None:
        self.close()

    # -- finalization ----------------------------------------------------

    def close(self) -> None:
        """Flush the tail block, write string table + index, patch the
        header.  Idempotent."""
        if self._file is None:
            return
        if self._block_records or not self._index:
            self._end_block()
        strings_offset = HEADER_SIZE + self._records_length
        strings = bytearray(struct.pack("<I", len(self._strings)))
        for text in self._strings:  # dicts preserve insertion order = id order
            data = text.encode("utf-8")
            strings += struct.pack("<I", len(data))
            strings += data
        self._file.write(strings)
        index_offset = strings_offset + len(strings)
        block_count = len(self._index) // _INDEX_ENTRY.size
        index = _INDEX_HEADER.pack(block_count, self.records_per_block) + bytes(self._index)
        self._file.write(index)
        self._file.seek(0)
        self._file.write(
            _HEADER.pack(
                MAGIC,
                BINLOG_VERSION,
                HEADER_SIZE,
                _FLAG_FINALIZED,
                self.record_count,
                self.access_count,
                HEADER_SIZE,
                self._records_length,
                strings_offset,
                len(strings),
                index_offset,
                len(index),
                self._crc,
            )
        )
        self._file.close()
        self._file = None

    def __enter__(self) -> "BinaryLogSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BlockSpan:
    """One index block's byte span, as the shard planner hands it out."""

    __slots__ = ("offset", "length", "records", "accesses", "syncs", "partitions", "has_sync")

    def __init__(self, offset, length, records, accesses, syncs, partitions, has_sync):
        self.offset = offset
        self.length = length
        self.records = records
        self.accesses = accesses
        self.syncs = syncs
        self.partitions = partitions
        self.has_sync = bool(has_sync)


def _shard_partition_mask(shard: int, shards: int) -> int:
    """Bitmap of the residues ``uid % UID_PARTITIONS`` that can hold a
    uid routed to ``shard`` (routing is ``uid % shards``).

    A uid in partition ``p`` has the form ``p + UID_PARTITIONS·t``; it
    lands in ``shard`` iff ``p ≡ shard (mod gcd(UID_PARTITIONS,
    shards))``.  Power-of-two shard counts therefore discriminate
    exactly; odd counts collapse to the full mask (no block can be
    ruled out) — conservative, never lossy.
    """
    import math

    g = math.gcd(UID_PARTITIONS, shards)
    mask = 0
    for p in range(UID_PARTITIONS):
        if (p - shard) % g == 0:
            mask |= 1 << p
    return mask


class BinaryLogReader:
    """Zero-copy view over an ``MJBL`` file.

    Opening validates the header *structurally* (magic, version,
    finalized flag, section offsets vs the actual file size) in O(1) —
    no record scan.  Record decoding happens lazily, per iteration;
    :meth:`shard_entries` skips whole blocks the shard cannot own.
    """

    def __init__(self, path: Union[str, Path], verify: bool = False) -> None:
        self.path = Path(path)
        try:
            size = self.path.stat().st_size
        except OSError as error:
            raise LogNotFoundError(
                f"{self.path}: cannot open binary event log ({error})"
            ) from error
        if size < HEADER_SIZE:
            raise LogCorruptError(
                f"{self.path}: {size}-byte file is smaller than the "
                f"{HEADER_SIZE}-byte MJBL header",
                offset=size,
            )
        self._file = open(self.path, "rb")
        try:
            self._map: mmap.mmap = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (ValueError, OSError):
            self._file.close()
            raise
        try:
            (
                magic,
                version,
                header_size,
                flags,
                self.record_count,
                self.access_count,
                self.records_offset,
                self.records_length,
                self.strings_offset,
                self.strings_length,
                self.index_offset,
                self.index_length,
                self.records_crc32,
            ) = _HEADER.unpack_from(self._map, 0)
            if magic != MAGIC:
                raise LogCorruptError(
                    f"{self.path}: bad magic {magic!r} at byte offset 0 "
                    f"(expected {MAGIC!r}; not a binary event log)",
                    offset=0,
                )
            if version != BINLOG_VERSION:
                raise LogSchemaMismatchError(
                    f"{self.path}: binary log version {version}, but this "
                    f"build reads version {BINLOG_VERSION} — re-record the "
                    f"execution with the current build"
                )
            if not flags & _FLAG_FINALIZED:
                raise LogCorruptError(
                    f"{self.path}: log was never finalized (recording "
                    f"crashed or the sink was not closed) — header flags "
                    f"at byte offset 12 lack the finalized bit",
                    offset=12,
                )
            end = self.index_offset + self.index_length
            if (
                header_size != HEADER_SIZE
                or self.records_offset != HEADER_SIZE
                or self.strings_offset != HEADER_SIZE + self.records_length
                or self.index_offset != self.strings_offset + self.strings_length
                or end != size
            ):
                raise LogCorruptError(
                    f"{self.path}: truncated or corrupt binary log — "
                    f"header promises sections ending at byte offset "
                    f"{end}, file has {size} bytes",
                    offset=min(end, size),
                )
        except Exception:
            self.close()
            raise
        self._strings: Optional[list[str]] = None
        self._blocks: Optional[list[BlockSpan]] = None
        if verify:
            self.verify()

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        if getattr(self, "_map", None) is not None:
            self._map.close()
            self._map = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "BinaryLogReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def sync_count(self) -> int:
        return self.record_count - self.access_count

    def size_bytes(self) -> int:
        return self.index_offset + self.index_length

    # -- sections --------------------------------------------------------

    @property
    def strings(self) -> list[str]:
        """The interned string table (decoded once, on first use)."""
        if self._strings is None:
            view = self._map
            offset = self.strings_offset
            end = offset + self.strings_length
            if self.strings_length < 4:
                # Without this guard a crafted zero-length (but offset-
                # consistent) string section would let unpack_from read
                # into the index region — or raise a bare struct.error.
                raise LogCorruptError(
                    f"{self.path}: string table at byte offset {offset} "
                    f"is {self.strings_length} bytes — too short for "
                    f"its 4-byte count header",
                    offset=offset,
                )
            (count,) = struct.unpack_from("<I", view, offset)
            offset += 4
            table: list[str] = []
            for _ in range(count):
                if offset + 4 > end:
                    raise LogCorruptError(
                        f"{self.path}: string table truncated at byte "
                        f"offset {offset}",
                        offset=offset,
                    )
                (length,) = struct.unpack_from("<I", view, offset)
                offset += 4
                if offset + length > end:
                    raise LogCorruptError(
                        f"{self.path}: string table truncated at byte "
                        f"offset {offset}",
                        offset=offset,
                    )
                table.append(view[offset : offset + length].decode("utf-8"))
                offset += length
            self._strings = table
        return self._strings

    @property
    def blocks(self) -> list[BlockSpan]:
        """The shard index (decoded once, on first use)."""
        if self._blocks is None:
            view = self._map
            offset = self.index_offset
            if self.index_length < _INDEX_HEADER.size:
                # Same hazard as the string table: a consistent-looking
                # header with a short index section would otherwise hit
                # unpack_from past the mapped file — a bare struct.error
                # with no file context.
                raise LogCorruptError(
                    f"{self.path}: shard index at byte offset {offset} "
                    f"is {self.index_length} bytes — too short for its "
                    f"{_INDEX_HEADER.size}-byte header",
                    offset=offset,
                )
            block_count, self.records_per_block = _INDEX_HEADER.unpack_from(view, offset)
            offset += _INDEX_HEADER.size
            expected = self.index_offset + self.index_length
            if offset + block_count * _INDEX_ENTRY.size != expected:
                raise LogCorruptError(
                    f"{self.path}: shard index truncated at byte offset "
                    f"{offset} ({block_count} blocks promised)",
                    offset=offset,
                )
            blocks = []
            for _ in range(block_count):
                blocks.append(BlockSpan(*_INDEX_ENTRY.unpack_from(view, offset)))
                offset += _INDEX_ENTRY.size
            self._blocks = blocks
        return self._blocks

    def verify(self) -> None:
        """Full integrity check: CRC-32 over the record region.

        The O(n) scan mapped reads deliberately skip; ``repro
        log-stats`` and the corruption tests call it explicitly.
        """
        region = self._map[self.records_offset : self.records_offset + self.records_length]
        actual = zlib.crc32(region)
        if actual != self.records_crc32:
            raise LogCorruptError(
                f"{self.path}: record region CRC mismatch "
                f"(header says {self.records_crc32:#010x}, bytes hash to "
                f"{actual:#010x}) — log corrupted between byte offsets "
                f"{self.records_offset} and "
                f"{self.records_offset + self.records_length}",
                offset=self.records_offset,
            )

    # -- decoding --------------------------------------------------------

    def _decode_span(
        self,
        offset: int,
        end: int,
        shard: int = -1,
        shards: int = 1,
    ) -> Iterator[tuple]:
        """Decode ``[offset, end)`` into schema-v3 tuples.

        With ``shard >= 0``, access records whose uid is not routed to
        that shard are skipped after reading only their uid — the lazy
        path sharded detection rides on.
        """
        view = self._map
        strings = self.strings
        access = RecordingSink.ACCESS
        enter = RecordingSink.ENTER
        exit_ = RecordingSink.EXIT
        start = RecordingSink.START
        end_tag = RecordingSink.END
        join = RecordingSink.JOIN
        wait = RecordingSink.WAIT
        notify = RecordingSink.NOTIFY
        sizes = _RECORD_SIZE
        while offset < end:
            tag = view[offset]
            size = sizes.get(tag)
            if size is None:
                raise LogCorruptError(
                    f"{self.path}: unknown record tag {tag} at byte "
                    f"offset {offset} — log corrupted",
                    offset=offset,
                )
            if offset + size > end:
                raise LogCorruptError(
                    f"{self.path}: record at byte offset {offset} "
                    f"(tag {tag}) extends past the record region end "
                    f"{end} — log truncated",
                    offset=offset,
                )
            if tag == TAG_ACCESS:
                (_, kind, objkind, uid, thread, site, field_id, label_id) = (
                    _ACCESS.unpack_from(view, offset)
                )
                if shard < 0 or uid % shards == shard:
                    try:
                        yield (
                            access,
                            uid,
                            strings[field_id],
                            thread,
                            _KIND_FROM[kind],
                            site,
                            _OBJKIND_FROM[objkind],
                            strings[label_id],
                        )
                    except IndexError:
                        raise LogCorruptError(
                            f"{self.path}: access record at byte offset "
                            f"{offset} references an out-of-range string "
                            f"or enum code — log corrupted",
                            offset=offset,
                        ) from None
            elif tag == TAG_ENTER or tag == TAG_EXIT:
                (_, reentrant, thread, lock) = _MONITOR.unpack_from(view, offset)
                yield (
                    enter if tag == TAG_ENTER else exit_,
                    thread,
                    lock,
                    bool(reentrant),
                )
            elif tag == TAG_START:
                (_, parent, child) = _START.unpack_from(view, offset)
                yield (start, parent, child)
            elif tag == TAG_END:
                (_, thread) = _END.unpack_from(view, offset)
                yield (end_tag, thread)
            elif tag == TAG_JOIN:
                (_, joiner, joined) = _JOIN.unpack_from(view, offset)
                yield (join, joiner, joined)
            elif tag == TAG_WAIT:
                (_, thread, cond) = _WAIT.unpack_from(view, offset)
                yield (wait, thread, cond)
            else:
                (_, notify_all, thread, cond) = _NOTIFY.unpack_from(view, offset)
                yield (notify, thread, cond, bool(notify_all))
            offset += size

    def entries(self) -> Iterator[tuple]:
        """Lazily decode the whole log as schema-v3 tuples, in order."""
        return self._decode_span(
            self.records_offset, self.records_offset + self.records_length
        )

    def __iter__(self) -> Iterator[tuple]:
        return self.entries()

    def __len__(self) -> int:
        return self.record_count

    def shard_blocks(self, shard: int, shards: int) -> list[BlockSpan]:
        """The blocks shard ``shard`` of ``shards`` must consume: every
        block holding sync events, plus blocks whose uid-partition
        bitmap intersects the shard's residue mask."""
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards} shards")
        mask = _shard_partition_mask(shard, shards)
        return [
            block
            for block in self.blocks
            if block.has_sync or block.partitions & mask
        ]

    def shard_entries(self, shard: int, shards: int) -> Iterator[tuple]:
        """Lazily decode exactly the entries shard ``shard`` consumes:
        its own access events plus every sync event, in log order —
        the same stream :func:`repro.detector.sharded.partition_log`
        would hand that shard, without materializing the others."""
        for block in self.shard_blocks(shard, shards):
            yield from self._decode_span(
                block.offset, block.offset + block.length, shard, shards
            )

    # -- statistics ------------------------------------------------------

    def stats(self) -> dict:
        """Event counts by kind plus distinct-entity counts (one lazy
        pass over the mapped records)."""
        return collect_log_stats(self.entries())


# ----------------------------------------------------------------------
# Format-agnostic helpers.


LogLike = Union[RecordingSink, Sequence[tuple], BinaryLogReader]


def as_log_entries(log: LogLike) -> Iterable[tuple]:
    """Normalize any log shape — :class:`RecordingSink`, raw tuple
    entries, or a mapped :class:`BinaryLogReader` — to an iterable of
    schema-v3 tuples.  The common adapter the detector, harness, and
    difflab boundaries accept either format through."""
    if isinstance(log, RecordingSink):
        return log.log
    if isinstance(log, BinaryLogReader):
        return log.entries()
    return log


@contextmanager
def temporary_binary_log(suffix: str = ".mjbl", dir=None):
    """A temp-file path that is *always* unlinked, even on error.

    ``NamedTemporaryFile(delete=False)`` + a manual ``unlink`` leaks
    whenever anything raises between close and unlink (and fights
    Windows-style locked-file semantics, since the writer reopens the
    file by name while the handle object still exists).  This context
    manager is the one shared shape: create the name eagerly with the
    handle already closed, yield the :class:`~pathlib.Path`, and
    guarantee removal in ``finally``.  The difflab round-trip axis, the
    harness post-mortem recorder, and the ``repro serve`` upload spool
    all route through it.
    """
    import os
    import tempfile

    descriptor, name = tempfile.mkstemp(suffix=suffix, dir=dir)
    os.close(descriptor)
    path = Path(name)
    try:
        yield path
    finally:
        path.unlink(missing_ok=True)


def write_binary_log(log: LogLike, path: Union[str, Path]) -> Path:
    """Serialize any log shape to an ``MJBL`` file (the ``tuple →
    binary`` half of the round-trip contract)."""
    from .events import replay_entries

    path = Path(path)
    with BinaryLogSink(path) as sink:
        replay_entries(as_log_entries(log), sink)
    return path


def read_binary_log(path: Union[str, Path]) -> list[tuple]:
    """Materialize an ``MJBL`` file as schema-v3 tuples (the ``binary →
    tuple`` half of the round-trip contract)."""
    with BinaryLogReader(path) as reader:
        return list(reader.entries())


def is_binary_log(path: Union[str, Path]) -> bool:
    """True if ``path`` starts with the ``MJBL`` magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def open_log(path: Union[str, Path]) -> LogLike:
    """Open an on-disk event log of either format, auto-detected by
    magic bytes.

    Returns a :class:`BinaryLogReader` for ``MJBL`` files, or the
    validated tuple entries for JSON logs produced by
    :func:`~repro.runtime.events.dump_log`.  Binary logs are validated
    structurally in O(1); tuple logs pay the one
    :func:`~repro.runtime.events.validate_entries` pass here — their
    single validation point — so downstream detection must not
    re-validate.
    """
    path = Path(path)
    if not path.exists():
        raise LogNotFoundError(f"{path}: event log not found")
    if is_binary_log(path):
        return BinaryLogReader(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise LogNotFoundError(
            f"{path}: cannot read event log ({error})"
        ) from error
    except UnicodeDecodeError as error:
        raise LogCorruptError(
            f"{path}: neither a binary event log (no MJBL magic at byte "
            f"offset 0) nor a JSON tuple log (not UTF-8 at byte offset "
            f"{error.start})",
            offset=error.start,
        ) from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise LogCorruptError(
            f"{path}: neither a binary event log (no MJBL magic at byte "
            f"offset 0) nor a JSON tuple log (JSON decode failed at "
            f"byte offset {error.pos}: {error.msg})",
            offset=error.pos,
        ) from error
    return load_log(payload)


def collect_log_stats(entries: Iterable[tuple]) -> dict:
    """One streaming pass of summary statistics over schema-v3 tuples:
    counts by kind and distinct locations / threads / locks / condition
    objects.  Works on any entry source, so ``repro log-stats`` serves
    both formats through it."""
    counts = {
        RecordingSink.ACCESS: 0,
        RecordingSink.ENTER: 0,
        RecordingSink.EXIT: 0,
        RecordingSink.START: 0,
        RecordingSink.END: 0,
        RecordingSink.JOIN: 0,
        RecordingSink.WAIT: 0,
        RecordingSink.NOTIFY: 0,
    }
    reads = writes = 0
    locations: set = set()
    threads: set = set()
    locks: set = set()
    conditions: set = set()
    access = RecordingSink.ACCESS
    for entry in entries:
        tag = entry[0]
        counts[tag] += 1
        if tag == access:
            locations.add((entry[1], entry[2]))
            threads.add(entry[3])
            if entry[4] is AccessKind.WRITE:
                writes += 1
            else:
                reads += 1
        elif tag in (RecordingSink.ENTER, RecordingSink.EXIT):
            threads.add(entry[1])
            locks.add(entry[2])
        elif tag == RecordingSink.START:
            threads.add(entry[1])
            threads.add(entry[2])
        elif tag in (RecordingSink.END, RecordingSink.WAIT, RecordingSink.NOTIFY):
            threads.add(entry[1])
            if tag != RecordingSink.END:
                conditions.add(entry[2])
        elif tag == RecordingSink.JOIN:
            threads.add(entry[1])
            threads.add(entry[2])
    total = sum(counts.values())
    return {
        "events": total,
        "counts": dict(counts),
        "reads": reads,
        "writes": writes,
        "distinct_locations": len(locations),
        "distinct_threads": len(threads),
        "distinct_locks": len(locks),
        "distinct_conditions": len(conditions),
    }


def estimate_binary_bytes(
    entries: Iterable[tuple],
    records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
) -> int:
    """Size in bytes the ``MJBL`` serialization of ``entries`` would
    occupy — record widths plus header, string table, and index —
    computed streaming, without writing anything.  The numerator of
    ``repro log-stats``'s size ratio for tuple-format inputs."""
    records = 0
    count = 0
    strings: set[str] = set()
    string_bytes = 0
    access = RecordingSink.ACCESS
    tag_of = {
        RecordingSink.ENTER: TAG_ENTER,
        RecordingSink.EXIT: TAG_EXIT,
        RecordingSink.START: TAG_START,
        RecordingSink.END: TAG_END,
        RecordingSink.JOIN: TAG_JOIN,
        RecordingSink.WAIT: TAG_WAIT,
        RecordingSink.NOTIFY: TAG_NOTIFY,
    }
    for entry in entries:
        count += 1
        if entry[0] == access:
            records += _ACCESS.size
            for text in (entry[2], entry[7]):
                if text not in strings:
                    strings.add(text)
                    string_bytes += 4 + len(text.encode("utf-8"))
        else:
            records += _RECORD_SIZE[tag_of[entry[0]]]
    blocks = max(1, -(-count // records_per_block))
    return (
        HEADER_SIZE
        + records
        + 4 + string_bytes
        + _INDEX_HEADER.size + blocks * _INDEX_ENTRY.size
    )


def tuple_log_json_bytes(entries: Iterable[tuple]) -> int:
    """Size in bytes of the JSON tuple-log serialization of ``entries``,
    computed streaming (no materialized payload) — the denominator of
    ``repro log-stats``'s tuple-vs-binary size ratio."""
    # Mirrors dump_log()'s shape: {"version": N, "entries": [...]}.
    size = len(f'{{"version": {RecordingSink.SCHEMA_VERSION}, "entries": [') + len("]}")
    first = True
    access = RecordingSink.ACCESS
    for entry in entries:
        if entry[0] == access:
            encoded = [entry[0], entry[1], entry[2], entry[3], entry[4].value,
                       entry[5], entry[6].value, entry[7]]
        else:
            encoded = list(entry)
        size += len(json.dumps(encoded)) + (0 if first else 2)
        first = False
    return size
