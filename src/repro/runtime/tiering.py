"""Tiered compilation: runtime instrumentation elision for the
compiled engine.

The Full configuration's residual overhead over Base is the per-access
instrumentation spine: every traced access crosses a Python call into
:meth:`RaceDetector.on_access_parts` even when the outcome is the
trivial one (owned by the accessing thread, or an access-cache hit).
This module fuses the ownership model (Section 7;
:mod:`repro.detector.ownership`) into the compiled trace stubs as a
tiered scheme:

Tier 0 — *inline fast path*.  Every traced site compiles to a stub that
performs the detector's own keying and owner check inline and completes
the three dominant outcomes — virgin claim, owner re-access, and
shared access absorbed by the per-thread cache — with *exactly* the
counter effects of the untired pipeline, never entering the spine.
Anything non-trivial (ownership transition, cache miss, exotic config)
falls into the unmodified ``on_access_parts`` call.

Tier 1 — *elision*.  Accesses that are **provably filtered** stop being
materialized at all:

* *statically*, a site whose base can only point to abstract objects
  the escape analysis proves thread-local compiles to a bare counter
  stub (the access never reaches even the keying code);
* *dynamically*, once ownership settles into a **terminal state** — a
  sole surviving thread that can never execute another ``start`` —
  that thread's accesses to virgin or self-owned locations reduce to a
  single elision counter.

Elided accesses are folded back into the pipeline counters at run end
(:meth:`TieringState.fold`): each one is, by construction, an access
whose untired effect is exactly ``accesses += 1`` and
``owned_filtered += 1`` (see :meth:`OwnershipFilter.would_filter`), so
race reports, report-JSON funnels, cache statistics, and difflab
verdict matrices stay byte-identical to the untired engine.

Demotion is impossible by construction: SHARED admits no outgoing
transition, statically thread-local objects are never reachable by a
second thread, and settlement requires that no thread able to
``start`` can ever run again (enforced with a hard error if violated).

Engagement requires the compiled engine, a bare
:class:`~repro.detector.pipeline.RaceDetector` sink (timed subclass
included), and the ownership model enabled; recording or multicast
sinks never engage, so event logs and replay traces are unaffected.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..lang import ast

#: Valid tiering modes for ``--tiering`` / ``REPRO_TIERING``.
TIERING_MODES = ("off", "on")


def _env_default() -> str:
    value = os.environ.get("REPRO_TIERING", "off")
    if value not in TIERING_MODES:
        raise ValueError(
            f"REPRO_TIERING={value!r} is not a valid tiering mode; "
            f"choose one of {', '.join(TIERING_MODES)}"
        )
    return value


#: Process-wide default tiering mode, from ``REPRO_TIERING`` (off when
#: unset) — the tiering analogue of ``REPRO_ENGINE``.
DEFAULT_TIERING = _env_default()


def validate_tiering(mode: str) -> str:
    if mode not in TIERING_MODES:
        raise ValueError(
            f"unknown tiering mode {mode!r}; "
            f"choose one of {', '.join(TIERING_MODES)}"
        )
    return mode


# ---------------------------------------------------------------------------
# Static facts: start reachability and thread-local sites.


def _called_names(method: ast.MethodDecl) -> tuple[set[str], bool]:
    """(names this method may call, does it contain a ``start``).

    ``new C(...)`` counts as a call to ``init`` — constructors can
    start threads.  Dispatch is resolved by bare name over every class
    (conservative for virtual calls).
    """
    names: set[str] = set()
    has_start = False
    stack: list[ast.Node] = [method.body]
    while stack:
        node = stack.pop()
        node_type = type(node)
        if node_type is ast.Start:
            has_start = True
        elif node_type is ast.Call:
            names.add(node.method_name)
        elif node_type is ast.New:
            names.add("init")
        stack.extend(node.children())
    return names, has_start


def _all_methods(resolved) -> list[ast.MethodDecl]:
    methods = list(resolved.methods)
    if resolved.main_method not in methods:
        methods.append(resolved.main_method)
    return methods


def analyze_start_reach(resolved) -> set[str]:
    """Qualified names of methods from which a ``start`` is reachable.

    A conservative name-based call-graph fixpoint: a method reaches
    ``start`` if its body contains one, or it may call *any* method of
    a name that reaches ``start``."""
    methods = _all_methods(resolved)
    calls: dict[str, set[str]] = {}
    reaches: set[str] = set()
    by_name: dict[str, list[str]] = {}
    for method in methods:
        qname = method.qualified_name
        names, has_start = _called_names(method)
        calls[qname] = names
        by_name.setdefault(method.name, []).append(qname)
        if has_start:
            reaches.add(qname)
    changed = True
    while changed:
        changed = False
        reaching_names = {
            name
            for name, qnames in by_name.items()
            if any(qname in reaches for qname in qnames)
        }
        for method in methods:
            qname = method.qualified_name
            if qname in reaches:
                continue
            if calls[qname] & reaching_names:
                reaches.add(qname)
                changed = True
    return reaches


def _stmt_reaches_start(stmt: ast.Stmt, reaches: set[str],
                        reaching_names: set[str]) -> bool:
    stack: list[ast.Node] = [stmt]
    while stack:
        node = stack.pop()
        node_type = type(node)
        if node_type is ast.Start:
            return True
        if node_type is ast.Call and node.method_name in reaching_names:
            return True
        if node_type is ast.New and "init" in reaching_names:
            return True
        stack.extend(node.children())
    return False


def main_flip_index(resolved, reaches: set[str]) -> int:
    """Index of the last top-level ``main`` statement from which a
    ``start`` is reachable, or ``-1`` when main can never start a
    thread.  The compiled engine inserts the settlement flip right
    after this statement."""
    reaching_names = {
        method.name
        for method in _all_methods(resolved)
        if method.qualified_name in reaches
    }
    last = -1
    for index, stmt in enumerate(resolved.main_method.body.body):
        if _stmt_reaches_start(stmt, reaches, reaching_names):
            last = index
    return last


def run_can_start(resolved, reaches: set[str]) -> dict[str, bool]:
    """class name -> can its ``run`` method (the whole remaining
    execution of a child thread) reach a ``start``?  Classes without a
    ``run`` method can never be running threads; map them to False."""
    result: dict[str, bool] = {}
    for name, info in resolved.classes.items():
        run = info.resolve_method("run")
        result[name] = run is not None and run.qualified_name in reaches
    return result


def thread_local_sites(resolved, trace_sites, static_races=None) -> set[int]:
    """Traced sites whose base can only name thread-local objects.

    Such a site's every concrete access is to a location touched by
    exactly one thread for the whole run, i.e. provably
    ``owned_filtered`` in the untired pipeline — the static tier-1
    promotion condition.  Reuses the plan's points-to/escape results
    when present; otherwise computes them once.  Static (class-object)
    sites never qualify.
    """
    points_to = getattr(static_races, "points_to", None)
    escape = getattr(static_races, "escape", None)
    if points_to is None or escape is None:
        from ..analysis.escape import analyze_escape
        from ..analysis.pointsto import analyze_points_to

        points_to = analyze_points_to(resolved)
        escape = analyze_escape(resolved, points_to)
    candidates = trace_sites if trace_sites is not None else resolved.sites
    sites: set[int] = set()
    for site_id in candidates:
        if site_id not in resolved.sites:
            continue
        origin = resolved.origin_of(site_id)
        base = points_to.site_bases.get(origin)
        if base is None or base.kind == "static":
            continue
        objects = points_to.site_objects(origin)
        if objects and all(escape.is_thread_local(obj) for obj in objects):
            sites.add(site_id)
    return sites


# ---------------------------------------------------------------------------
# The per-run settlement tracker.


@dataclass
class TierCounters:
    """Tier-transition counters of one run (``check --phase-times``,
    ``/stats``, and the Full+tiering benchmark rows)."""

    sites_tier0: int
    sites_tier1_static: int
    inline_owned: int
    inline_cache_hits: int
    elided_static: int
    elided_settled: int
    settled: bool
    survivor: int | None

    @property
    def elided(self) -> int:
        return self.elided_static + self.elided_settled

    def as_dict(self) -> dict:
        return {
            "sites_tier0": self.sites_tier0,
            "sites_tier1_static": self.sites_tier1_static,
            "inline_owned": self.inline_owned,
            "inline_cache_hits": self.inline_cache_hits,
            "elided_static": self.elided_static,
            "elided_settled": self.elided_settled,
            "elided_total": self.elided,
            "settled": self.settled,
            "survivor": self.survivor,
        }


class TieringState:
    """One engine run's tiering machinery.

    Holds the pre-bound detector internals the compiled stubs close
    over, the static tier-1 site set, and the dynamic settlement
    tracker (live-thread set + start-reachability facts).
    """

    def __init__(self, engine, detector):
        from ..detector.ownership import SHARED

        self.detector = detector
        self.shared = SHARED
        self.owners = detector._owners
        self.intern = detector._intern
        self.own_stats = detector._own_stats
        self.fields_merged = detector._fields_merged
        cache = detector.cache
        #: The shared→cache-hit outcome is inlined only for the plain
        #: single-probe cache; the ``write_covers_read`` extension's
        #: double probe stays on the spine.
        self.inline_cache = cache is not None and not cache._write_covers_read
        self.cache_stats = cache.stats if cache is not None else None
        self.cache_threads = cache._threads if cache is not None else None
        self.cache_size = cache._size if cache is not None else 0
        # The direct-mapped index constants, so the inlined probe can
        # never drift from _DirectMappedCache._index.
        from ..detector.cache import _HASH_MULTIPLIER, _MASK32

        self.hash_multiplier = _HASH_MULTIPLIER
        self.hash_mask = _MASK32

        resolved = engine._resolved
        self.static_sites = thread_local_sites(
            resolved, engine._trace_sites, detector._static_races
        )
        reaches = analyze_start_reach(resolved)
        self.flip_index = main_flip_index(resolved, reaches)
        self._run_can_start = run_can_start(resolved, reaches)

        # Stub-visible cells (list cells: cheapest mutable closure state).
        self.settled_cell: list = [False]
        self.survivor_cell: list = [None]
        self.inline_owned_cell = [0]
        self.inline_hit_cell = [0]
        self.elide_static_cell = [0]
        self.elide_settled_cell = [0]
        #: Compile-time tier census, filled by the stub compiler.
        self.sites_tier0 = 0
        self.sites_tier1_static = 0

        self._live: set[int] = {0}
        #: thread id -> may its remaining execution reach a ``start``?
        self._can_start: dict[int, bool] = {0: self.flip_index >= 0}
        self._folded = False
        self._maybe_settle()

    # -- thread lifecycle ------------------------------------------------

    def note_start(self, child_id: int, class_name: str) -> None:
        if self.settled_cell[0]:
            raise RuntimeError(
                "tiering settlement violated: thread started after the "
                "ownership state was promoted as terminal"
            )
        self._live.add(child_id)
        self._can_start[child_id] = self._run_can_start.get(class_name, True)

    def note_end(self, thread_id: int) -> None:
        self._live.discard(thread_id)
        self._maybe_settle()

    def note_main_past_starts(self) -> None:
        """Main crossed its last start-reaching top-level statement."""
        self._can_start[0] = False
        self._maybe_settle()

    def _maybe_settle(self) -> None:
        if self.settled_cell[0] or len(self._live) != 1:
            return
        (survivor,) = self._live
        if self._can_start.get(survivor, True):
            return
        # Terminal: one live thread, provably unable to create another.
        self.survivor_cell[0] = survivor
        self.settled_cell[0] = True

    def install_main_flip(self, main_entry) -> None:
        """Insert the settlement flip as a pure item right after main's
        last start-reaching top-level statement.  Pure items run without
        a scheduler step, so decision sequences are unchanged."""
        if self.flip_index < 0:
            return  # Settled from step zero; nothing to insert.
        items = list(main_entry.body_cell[0])
        flip = self.note_main_past_starts

        def run_flip(frame):
            flip()

        items.insert(self.flip_index + 1, (False, run_flip))
        main_entry.body_cell[0] = tuple(items)

    # -- run-end accounting ----------------------------------------------

    def fold(self) -> int:
        """Restore counter parity at run end; returns the number of
        accesses the stubs completed without the spine (the engine adds
        it to its emitted counter).  Idempotent.

        Two populations fold back: the tier-0 fast-path completions
        (owned/virgin and shared→cache-hit), whose counter effects were
        deferred to the stub cells, and the tier-1 elisions, which by
        :meth:`OwnershipFilter.would_filter` are each an exact
        ``owned_filtered`` no-op.  After folding, every pipeline,
        ownership, and cache counter equals the untired run's."""
        if self._folded:
            return 0
        self._folded = True
        owned = self.inline_owned_cell[0]
        hits = self.inline_hit_cell[0]
        elided = self.elide_static_cell[0] + self.elide_settled_cell[0]
        detector = self.detector
        stats = detector.stats
        stats.accesses += owned + hits + elided
        stats.owned_filtered += owned
        stats.cache_hits += hits
        self.own_stats.owned_filtered += owned
        self.own_stats.shared_passed += hits
        if self.cache_stats is not None:
            self.cache_stats.hits += hits
        detector.ownership.fold_elided(elided)
        stats.owned_filtered += elided
        detector.tiering = self.counters()
        return owned + hits + elided

    def counters(self) -> TierCounters:
        return TierCounters(
            sites_tier0=self.sites_tier0,
            sites_tier1_static=self.sites_tier1_static,
            inline_owned=self.inline_owned_cell[0],
            inline_cache_hits=self.inline_hit_cell[0],
            elided_static=self.elide_static_cell[0],
            elided_settled=self.elide_settled_cell[0],
            settled=self.settled_cell[0],
            survivor=self.survivor_cell[0],
        )


def attach_tiering(engine):
    """Build a :class:`TieringState` for the engine, or ``None`` when
    tiering cannot engage.

    Engagement requires a bare :class:`RaceDetector` sink (subclasses
    such as the harness's timed detector included — recording and
    multicast sinks never engage, so logs stay byte-identical) with the
    ownership model enabled (elision eligibility is defined by
    ownership's terminal states).
    """
    sink = engine._sink
    if sink is None:
        return None
    from ..detector.pipeline import RaceDetector

    if not isinstance(sink, RaceDetector):
        return None
    if sink.ownership is None:
        return None
    return TieringState(engine, sink)
