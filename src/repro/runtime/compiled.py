"""The compiled MJ engine: a drop-in :class:`Interpreter` replacement.

:class:`CompiledInterpreter` executes the closure-threaded code produced
by :mod:`repro.runtime.compile` instead of walking the AST.  Everything
observable is identical to the AST engine — scheduler decision
sequences, uid allocation order, the schema-v3 event stream byte for
byte, error messages, wait/notify/barrier semantics — because the
compiled closures yield at exactly the interpreter's preemption points
and perform memory operations in the same order.  Only the per-step
constant factor changes: node dispatch, locals access, method
resolution, and the traced/untraced decision all happen at compile
time.

Synchronization statements are *cold* (a handful of executions per
thread, versus millions of memory accesses), so their post-evaluation
logic lives here as engine kernels that the compiled closures delegate
to after evaluating operands.  The kernels are line-for-line the
interpreter's, operating on the same inherited runtime state
(``_lock_stacks``, ``_wait_sets``, ``_woken``, ``_barriers``), which
keeps the two engines' semantics from drifting apart structurally as
well as observably.
"""

from __future__ import annotations

from typing import Optional

from ..lang.errors import MJRuntimeError, SourceLocation
from ..lang.resolver import ResolvedProgram
from .compile import _UNBOUND, ProgramCompiler
from .interpreter import _Return
from .tiering import attach_tiering
from .events import EventSink, ObjectKind
from .interpreter import Interpreter, RunResult
from .scheduler import SchedulingPolicy, ThreadState, ThreadStatus
from .values import MJArray, MJClassObject, MJObject, Reference, mj_repr


class CompiledInterpreter(Interpreter):
    """Executes one resolved MJ program through compiled closures.

    Construction compiles the whole program (one cheap AST walk);
    :meth:`run` then drives the compiled entry point under the same
    scheduler the AST engine uses.  All constructor parameters and the
    :class:`RunResult` contract match :class:`Interpreter`.
    """

    def __init__(
        self,
        resolved: ResolvedProgram,
        sink: Optional[EventSink] = None,
        trace_sites: Optional[set[int]] = None,
        policy: Optional[SchedulingPolicy] = None,
        max_steps: int = 10_000_000,
        tiering: Optional[str] = None,
    ):
        super().__init__(
            resolved,
            sink=sink,
            trace_sites=trace_sites,
            policy=policy,
            max_steps=max_steps,
            tiering=tiering,
        )
        #: [accesses_executed, accesses_emitted] as list cells — the
        #: trace stubs increment these (cheaper than attribute stores);
        #: run() folds them back into the public counters.
        self._counts = [0, 0]
        #: Tiering engages before compilation — the trace stubs
        #: specialize on it (:mod:`repro.runtime.tiering`).
        if self._tiering_mode == "on":
            self._tiering = attach_tiering(self)
        self._compiled = ProgramCompiler(self).compile()
        if self._tiering is not None:
            self._tiering.install_main_flip(self._compiled.main_entry)

    # ------------------------------------------------------------------
    # Entry point.

    def run(self) -> RunResult:
        main_thread = ThreadState(thread_id=0, name="main", body=None)
        main_thread.body = self._main_body(main_thread)
        self._threads.append(main_thread)
        self._scheduler.register(main_thread)
        try:
            steps = self._scheduler.run()
        finally:
            if self._tiering is not None:
                # Fold the tier-1 elided accesses back into the detector
                # and emitted counters: each was provably filtered, so
                # every observable matches the untired run.
                self._counts[1] += self._tiering.fold()
            self.accesses_executed = self._counts[0]
            self.accesses_emitted = self._counts[1]
        if self._sink is not None:
            self._sink.on_run_end()
        return RunResult(
            output=self.output,
            steps=steps,
            threads_created=len(self._threads),
            accesses_executed=self.accesses_executed,
            accesses_emitted=self.accesses_emitted,
        )

    def _main_body(self, thread: ThreadState):
        return self._thread_body(self._compiled.main_entry, None, thread)

    def _thread_body(self, entry, this, thread: ThreadState):
        """Drive a zero-argument compiled method (main / run) as one
        generator frame over its statement items: every scheduler step
        of the thread traverses this frame, so delegation wrappers here
        are the most expensive frames in the program.  ``main``/``run``
        declaring parameters raises exactly like the AST engine's
        ``_invoke``."""
        if entry.nparams != 0:
            raise MJRuntimeError(
                f"{entry.qname} expects {entry.nparams} argument(s), got 0",
                entry.location,
            )
        frame = [_UNBOUND] * entry.nslots
        frame[0] = this
        try:
            for is_gen, fn in entry.body_cell[0]:
                if is_gen:
                    yield from fn(frame, thread)
                else:
                    fn(frame)
        except _Return:
            pass
        if self._sink is not None:
            self._sink.on_thread_end(thread.thread_id)
        if self._tiering is not None:
            self._tiering.note_end(thread.thread_id)

    # ------------------------------------------------------------------
    # Label interning (slow path of the traced stubs).

    def _label_of(self, ref: Reference) -> tuple:
        """Compute and intern the (ObjectKind, label) pair for ``ref``."""
        uid = ref.uid
        if isinstance(ref, MJArray):
            cached = (ObjectKind.ARRAY, f"array#{uid}")
        elif isinstance(ref, MJClassObject):
            cached = (ObjectKind.CLASS, f"class {ref.class_info.name}")
        else:
            cached = (ObjectKind.INSTANCE, f"{ref.class_info.name}#{uid}")
        self._ref_labels[uid] = cached
        return cached

    # ------------------------------------------------------------------
    # Thread lifecycle kernels.

    def _start_kernel(self, obj, thread: ThreadState, location: SourceLocation):
        if not isinstance(obj, MJObject):
            raise MJRuntimeError(
                f"start requires a thread object, got {mj_repr(obj)}",
                location,
            )
        run_entry = self._compiled.vtables[obj.class_info.name].get("run")
        if run_entry is None:
            raise MJRuntimeError(
                f"class {obj.class_info.name!r} has no 'run' method",
                location,
            )
        if obj.uid in self._started_objects:
            raise MJRuntimeError(
                f"thread object {obj!r} started twice", location
            )
        child_id = len(self._threads)
        child = ThreadState(thread_id=child_id, name=f"T{child_id}", body=None)
        child.body = self._child_body(child, obj, run_entry)
        self._threads.append(child)
        self._started_objects[obj.uid] = child
        self._scheduler.register(child)
        if self._sink is not None:
            self._sink.on_thread_start(thread.thread_id, child_id)
        if self._tiering is not None:
            self._tiering.note_start(child_id, obj.class_info.name)
        yield

    def _child_body(self, thread: ThreadState, obj: MJObject, run_entry):
        return self._thread_body(run_entry, obj, thread)

    def _join_kernel(self, obj, thread: ThreadState, location: SourceLocation):
        if not isinstance(obj, MJObject):
            raise MJRuntimeError(
                f"join requires a thread object, got {mj_repr(obj)}",
                location,
            )
        target = self._started_objects.get(obj.uid)
        if target is None:
            raise MJRuntimeError(
                "join on a thread object that was never started", location
            )
        while target.status is not ThreadStatus.FINISHED:
            thread.status = ThreadStatus.JOINING
            thread.joining_on = target
            yield
        if self._sink is not None:
            self._sink.on_thread_join(thread.thread_id, target.thread_id)

    # ------------------------------------------------------------------
    # Condition synchronization kernels.

    def _wait_kernel(self, obj, thread: ThreadState, location: SourceLocation):
        if not isinstance(obj, Reference):
            raise MJRuntimeError(
                f"wait requires an object, got {mj_repr(obj)}", location
            )
        monitor = obj.monitor
        if monitor.owner != thread.thread_id:
            raise MJRuntimeError("wait without holding the monitor", location)
        stack = self._lock_stacks.get(thread.thread_id)
        if not stack or stack[-1] != obj.uid:
            raise MJRuntimeError(
                "wait target must be the innermost held monitor "
                "(release/re-acquire would break lock nesting otherwise)",
                location,
            )
        # Release every reentrancy level; restored verbatim at wakeup.
        depth = monitor.count
        for _ in range(depth):
            freed = monitor.release(thread.thread_id)
            if self._sink is not None:
                self._sink.on_monitor_exit(
                    thread.thread_id, obj.uid, reentrant=not freed
                )
        self._wait_sets.setdefault(obj.uid, []).append(thread.thread_id)
        thread.status = ThreadStatus.WAITING
        thread.waiting_on = f"monitor #{obj.uid}"
        yield
        while thread.thread_id not in self._woken:
            yield
        self._woken.discard(thread.thread_id)
        thread.waiting_on = None
        while not monitor.can_acquire(thread.thread_id):
            thread.status = ThreadStatus.BLOCKED
            thread.blocked_on = monitor
            yield
        for _ in range(depth):
            outermost = monitor.acquire(thread.thread_id)
            if self._sink is not None:
                self._sink.on_monitor_enter(
                    thread.thread_id, obj.uid, reentrant=not outermost
                )
        # Emitted after re-acquisition so the notify entry precedes it.
        if self._sink is not None:
            self._sink.on_wait(thread.thread_id, obj.uid)

    def _notify_kernel(
        self, obj, thread: ThreadState, notify_all: bool, location: SourceLocation
    ) -> None:
        if not isinstance(obj, Reference):
            keyword = "notifyall" if notify_all else "notify"
            raise MJRuntimeError(
                f"{keyword} requires an object, got {mj_repr(obj)}", location
            )
        monitor = obj.monitor
        if monitor.owner != thread.thread_id:
            keyword = "notifyall" if notify_all else "notify"
            raise MJRuntimeError(
                f"{keyword} without holding the monitor", location
            )
        if self._sink is not None:
            self._sink.on_notify(thread.thread_id, obj.uid, notify_all)
        waiters = self._wait_sets.get(obj.uid)
        if not waiters:
            return  # Lost notification — a no-op, as in Java.
        if notify_all:
            released = list(waiters)
            waiters.clear()
        else:
            chosen = self._scheduler.policy.pick_waiter(list(waiters))
            waiters.remove(chosen)
            released = [chosen]
        for waiter_id in released:
            self._wake(waiter_id)

    def _barrier_kernel(
        self, obj, parties, thread: ThreadState, location: SourceLocation
    ):
        # The compiled closure has already verified obj is a Reference
        # (before evaluating the parties expression, as the AST engine
        # orders it).
        if not isinstance(parties, int) or isinstance(parties, bool) or parties < 1:
            raise MJRuntimeError(
                f"barrier party count must be a positive integer, got "
                f"{mj_repr(parties)}",
                location,
            )
        state = self._barriers.get(obj.uid)
        if state is None or state["parties"] is None:
            if state is None:
                state = {"parties": parties, "arrived": [], "generation": 0}
                self._barriers[obj.uid] = state
            else:
                state["parties"] = parties
        elif state["parties"] != parties:
            raise MJRuntimeError(
                f"barrier #{obj.uid} party count mismatch: generation "
                f"{state['generation']} opened with {state['parties']}, "
                f"this arrival says {parties}",
                location,
            )
        if self._sink is not None:
            self._sink.on_notify(thread.thread_id, obj.uid, True)
        state["arrived"].append(thread.thread_id)
        if len(state["arrived"]) == state["parties"]:
            # Last arriver trips the barrier and does not suspend.
            for waiter_id in state["arrived"]:
                if waiter_id != thread.thread_id:
                    self._wake(waiter_id)
            state["arrived"] = []
            state["parties"] = None  # Next generation re-fixes the count.
            state["generation"] += 1
            if self._sink is not None:
                self._sink.on_wait(thread.thread_id, obj.uid)
            return
        generation = state["generation"]
        thread.status = ThreadStatus.WAITING
        thread.waiting_on = (
            f"barrier #{obj.uid} generation {generation} "
            f"({len(state['arrived'])}/{state['parties']} arrived)"
        )
        yield
        while thread.thread_id not in self._woken:
            yield
        self._woken.discard(thread.thread_id)
        thread.waiting_on = None
        if self._sink is not None:
            self._sink.on_wait(thread.thread_id, obj.uid)


def run_compiled_program(
    resolved: ResolvedProgram,
    sink: Optional[EventSink] = None,
    trace_sites: Optional[set[int]] = None,
    policy: Optional[SchedulingPolicy] = None,
    max_steps: int = 10_000_000,
    tiering: Optional[str] = None,
) -> RunResult:
    """Execute ``resolved`` once through the compiled engine."""
    engine = CompiledInterpreter(
        resolved,
        sink=sink,
        trace_sites=trace_sites,
        policy=policy,
        max_steps=max_steps,
        tiering=tiering,
    )
    return engine.run()
