"""Synthetic event-stream generator for log-scale testing.

The committed MJ workloads top out around a few hundred thousand
events — enough to validate detection, nowhere near enough to exercise
the at-rest story the binary log exists for.  This module synthesizes
schema-v3 event streams of arbitrary size (10M+ events) *directly into
an* :class:`~repro.runtime.events.EventSink`, so a
:class:`~repro.runtime.binlog.BinaryLogSink` records them with bounded
memory while a :class:`~repro.runtime.events.RecordingSink` fed the
same seed materializes the identical tuple log for parity checks.

The stream is deterministic (a 64-bit LCG, no ``random`` module) and
*well-formed*: monitor enters and exits balance per thread, every
worker is started before it acts and ended before it is joined, so the
detector battery consumes it exactly like a recorded MJ run.  The
access mix is shaped like a disciplined concurrent program so detector
state and report volume stay bounded at any scale:

* **lock-disciplined objects** — each object is permanently assigned
  one lock (``uid % locks``) and is only touched by a thread holding
  that lock, so locksets never empty out;
* **thread-local objects** — per-thread slices the ownership model
  filters, the common case the paper's Section 7 optimizes;
* a small **racy slice** touched without locks from random threads at
  a fixed total budget (~``racy_total`` accesses per trace), so large
  traces exercise the race-reporting path with a bounded report count;
* occasional **notify/wait pairs** on condition objects, covering the
  schema-v3 condition-synchronization tags at scale.
"""

from __future__ import annotations

from ..lang.ast import AccessKind
from .events import EventSink, ObjectKind

#: uid layout; disjoint pools so routing by ``uid % shards`` spreads
#: every pool across shards.
_LOCK_BASE = 100
_COND_BASE = 5_000
_RACY_BASE = 8_000
_OBJECT_BASE = 10_000
_LOCAL_BASE = 1_000_000

_MASK = (1 << 64) - 1
_MUL = 6364136223846793005
_INC = 1442695040888963407


class _Lcg:
    __slots__ = ("state",)

    def __init__(self, seed: int) -> None:
        self.state = (seed * 2 + 1) & _MASK

    def next(self, bound: int) -> int:
        self.state = (self.state * _MUL + _INC) & _MASK
        return (self.state >> 33) % bound


def synthesize_into(
    sink: EventSink,
    events: int,
    threads: int = 8,
    objects: int = 4096,
    fields: int = 4,
    locks: int = 64,
    locals_per_thread: int = 64,
    racy_objects: int = 8,
    racy_total: int = 256,
    conds: int = 8,
    cond_total: int = 128,
    seed: int = 2002,
) -> int:
    """Stream a deterministic synthetic trace of exactly ``events``
    events into ``sink``; returns the event count delivered.

    ``events`` counts *all* delivered events — accesses, monitor
    operations, condition notifications, and thread lifecycle.
    ``racy_total`` and ``cond_total`` are per-trace budgets, not rates,
    so report volume and condition-object state stay constant as the
    trace grows.
    """
    if events < threads * 4 + racy_total + 2 * cond_total:
        raise ValueError(
            f"events={events} is too small for {threads} threads' "
            f"lifecycle plus the racy/condition budgets"
        )
    rng = _Lcg(seed)
    read = AccessKind.READ
    write = AccessKind.WRITE
    instance = ObjectKind.INSTANCE
    field_names = [f"f{i}" for i in range(fields)]
    labels: dict[int, str] = {}

    def label_of(uid: int) -> str:
        label = labels.get(uid)
        if label is None:
            labels[uid] = label = f"Syn#{uid}"
        return label

    emitted = 0
    for tid in range(1, threads + 1):
        sink.on_thread_start(0, tid)
        emitted += 1

    per_lock = max(1, objects // locks)
    racy_interval = max(1, events // max(1, racy_total))
    cond_interval = max(1, events // max(1, cond_total))
    next_racy = racy_interval
    next_cond = cond_interval

    held: list[int] = [0] * (threads + 1)  # 0 = no lock held
    held_count = 0
    on_access_parts = sink.on_access_parts

    def access(tid: int, uid: int, roll: int) -> None:
        on_access_parts(
            uid,
            field_names[roll % fields],
            tid,
            write if roll % 3 == 0 else read,
            rng.next(64),
            instance,
            label_of(uid),
        )

    # Teardown needs one end + one join per thread plus one exit per
    # currently-held lock; the loop keeps that reserve exact.
    while emitted + threads * 2 + held_count < events:
        tid = 1 + rng.next(threads)
        roll = rng.next(1000)
        budget = events - (emitted + threads * 2 + held_count)
        if emitted >= next_racy and budget >= 1:
            # The racy slice: no lock, any thread, fixed per-trace budget.
            access(tid, _RACY_BASE + rng.next(racy_objects), roll)
            emitted += 1
            next_racy += racy_interval
            continue
        if emitted >= next_cond and budget >= 2:
            # A notify/wait pair on a condition object (notify first, as
            # the recorder orders wakeups); lockset detection ignores
            # them, the format must carry them.
            cond_uid = _COND_BASE + rng.next(conds)
            other = 1 + rng.next(threads)
            sink.on_notify(tid, cond_uid, roll % 2 == 0)
            sink.on_wait(other, cond_uid)
            emitted += 2
            next_cond += cond_interval
            continue
        lock_held = held[tid]
        if lock_held:
            if roll < 150:
                sink.on_monitor_exit(tid, lock_held, False)
                held[tid] = 0
                held_count -= 1
            else:
                # Lock-disciplined access: only objects assigned to the
                # held lock, so the lockset intersection never empties.
                lock_index = lock_held - _LOCK_BASE
                uid = _OBJECT_BASE + lock_index + locks * rng.next(per_lock)
                access(tid, uid, roll)
            emitted += 1
            continue
        if roll < 300 and budget >= 2:  # enter costs the event + a reserved exit
            lock_uid = _LOCK_BASE + rng.next(locks)
            sink.on_monitor_enter(tid, lock_uid, False)
            held[tid] = lock_uid
            held_count += 1
        else:
            # Thread-local access: the ownership model's fast path.
            uid = _LOCAL_BASE + tid * locals_per_thread + rng.next(locals_per_thread)
            access(tid, uid, roll)
        emitted += 1

    for tid in range(1, threads + 1):
        if held[tid]:
            sink.on_monitor_exit(tid, held[tid], False)
            held[tid] = 0
            emitted += 1
        sink.on_thread_end(tid)
        emitted += 1
    for tid in range(1, threads + 1):
        sink.on_thread_join(0, tid)
        emitted += 1
    sink.on_run_end()
    return emitted


def synthesize_file(
    path,
    events: int,
    compress=None,
    records_per_block=None,
    **kwargs,
) -> int:
    """Stream a synthetic trace straight to an MJBL file at ``path``.

    The one-call form the ``repro synthlog`` command and the benchmarks
    share: ``compress=None`` writes format v1, an integer zlib level
    (0-9) writes v2.  Extra keyword arguments go to
    :func:`synthesize_into`.  Returns the event count written.
    """
    from .binlog import DEFAULT_RECORDS_PER_BLOCK, BinaryLogSink

    sink = BinaryLogSink(
        path,
        records_per_block=(
            DEFAULT_RECORDS_PER_BLOCK
            if records_per_block is None
            else records_per_block
        ),
        compress=compress,
    )
    try:
        return synthesize_into(sink, events, **kwargs)
    finally:
        sink.close()
