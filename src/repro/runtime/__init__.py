"""The MJ runtime: values, event stream, deterministic scheduler, interpreter."""

from .events import (
    AccessEvent,
    CountingSink,
    EventSink,
    LocationInterner,
    MemoryLocation,
    MulticastSink,
    ObjectKind,
    RecordingSink,
    replay_entries,
)
from .interpreter import Frame, Interpreter, RunResult, run_program
from .replay import (
    RecordingPolicy,
    ReplayDivergence,
    ReplayPolicy,
    ScheduleTrace,
    record_run,
    replay_run,
)
from .scheduler import (
    DeadlockError,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    StepLimitExceeded,
    ThreadState,
    ThreadStatus,
)
from .values import MJArray, MJClassObject, MJObject, Monitor, Reference, mj_repr

__all__ = [
    "AccessEvent",
    "CountingSink",
    "DeadlockError",
    "EventSink",
    "Frame",
    "Interpreter",
    "LocationInterner",
    "MJArray",
    "MJClassObject",
    "MJObject",
    "MemoryLocation",
    "Monitor",
    "MulticastSink",
    "ObjectKind",
    "RandomPolicy",
    "RecordingPolicy",
    "RecordingSink",
    "ReplayDivergence",
    "ReplayPolicy",
    "ScheduleTrace",
    "Reference",
    "RoundRobinPolicy",
    "RunResult",
    "Scheduler",
    "SchedulingPolicy",
    "StepLimitExceeded",
    "ThreadState",
    "ThreadStatus",
    "mj_repr",
    "record_run",
    "replay_entries",
    "replay_run",
    "run_program",
]
