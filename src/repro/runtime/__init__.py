"""The MJ runtime: values, event stream, deterministic scheduler, interpreter."""

from .events import (
    AccessEvent,
    CountingSink,
    EventSink,
    LocationInterner,
    LogCorruptError,
    LogNotFoundError,
    LogSchemaError,
    LogSchemaMismatchError,
    MemoryLocation,
    MulticastSink,
    ObjectKind,
    RecordingSink,
    dump_log,
    load_log,
    replay_entries,
    validate_entries,
)
from .binlog import (
    BinaryLogReader,
    BinaryLogSink,
    as_log_entries,
    collect_log_stats,
    is_binary_log,
    open_log,
    read_binary_log,
    temporary_binary_log,
    write_binary_log,
)
from .compiled import CompiledInterpreter, run_compiled_program
from .interpreter import Frame, Interpreter, RunResult, run_program
from .tiering import (
    DEFAULT_TIERING,
    TIERING_MODES,
    TierCounters,
    validate_tiering,
)

#: Engine registry: name -> run_program-compatible callable.  Every
#: entry point that executes MJ (CLI, harness, difflab, replay) selects
#: through this table so engines stay interchangeable.
ENGINES = {
    "ast": run_program,
    "compiled": run_compiled_program,
}

#: name -> Interpreter class, for callers that need to construct the
#: engine separately from running it (the harness keeps construction —
#: which includes closure compilation — outside its timed region, as it
#: already keeps MJ compilation and instrumentation planning).
ENGINE_CLASSES = {
    "ast": Interpreter,
    "compiled": CompiledInterpreter,
}

#: The default engine; the AST interpreter remains the reference
#: semantics that the compiled engine is differentially tested against.
#: ``REPRO_ENGINE`` overrides the default process-wide — CI uses it to
#: run the whole tier-1 suite under each engine without touching tests.
import os as _os

DEFAULT_ENGINE = _os.environ.get("REPRO_ENGINE", "ast")
if DEFAULT_ENGINE not in ENGINES:
    raise ValueError(
        f"REPRO_ENGINE={DEFAULT_ENGINE!r} is not an engine "
        f"(choose from: {', '.join(sorted(ENGINES))})"
    )


def engine_runner(engine: str):
    """Resolve an engine name to its ``run_program``-compatible runner."""
    try:
        return ENGINES[engine]
    except KeyError:
        known = ", ".join(sorted(ENGINES))
        raise ValueError(f"unknown engine {engine!r} (choose from: {known})")


def engine_class(engine: str):
    """Resolve an engine name to its :class:`Interpreter` subclass."""
    try:
        return ENGINE_CLASSES[engine]
    except KeyError:
        known = ", ".join(sorted(ENGINE_CLASSES))
        raise ValueError(f"unknown engine {engine!r} (choose from: {known})")

from .replay import (
    FallbackReplayPolicy,
    RecordingPolicy,
    ReplayDivergence,
    ReplayPolicy,
    ScheduleTrace,
    TraceExhausted,
    record_run,
    replay_run,
)
from .scheduler import (
    DeadlockError,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    StepLimitExceeded,
    ThreadState,
    ThreadStatus,
)
from .values import MJArray, MJClassObject, MJObject, Monitor, Reference, mj_repr

__all__ = [
    "AccessEvent",
    "CompiledInterpreter",
    "CountingSink",
    "DEFAULT_ENGINE",
    "DEFAULT_TIERING",
    "DeadlockError",
    "ENGINES",
    "ENGINE_CLASSES",
    "TIERING_MODES",
    "TierCounters",
    "EventSink",
    "FallbackReplayPolicy",
    "Frame",
    "Interpreter",
    "LocationInterner",
    "LogSchemaError",
    "MJArray",
    "MJClassObject",
    "MJObject",
    "MemoryLocation",
    "Monitor",
    "MulticastSink",
    "ObjectKind",
    "RandomPolicy",
    "RecordingPolicy",
    "RecordingSink",
    "ReplayDivergence",
    "ReplayPolicy",
    "ScheduleTrace",
    "Reference",
    "RoundRobinPolicy",
    "RunResult",
    "Scheduler",
    "SchedulingPolicy",
    "StepLimitExceeded",
    "ThreadState",
    "ThreadStatus",
    "TraceExhausted",
    "dump_log",
    "engine_class",
    "engine_runner",
    "load_log",
    "mj_repr",
    "record_run",
    "replay_entries",
    "replay_run",
    "run_compiled_program",
    "run_program",
    "validate_entries",
    "validate_tiering",
]
