"""Deterministic thread scheduling for the MJ interpreter.

The paper evaluates on real JVM threads; under CPython a faithful
wall-clock evaluation is impossible (GIL), so this reproduction executes
MJ threads as coroutines under a *deterministic, seeded* scheduler.
Each thread is a Python generator that yields at preemption points
(statement boundaries, memory accesses, monitor operations).  The
scheduler picks which runnable thread advances next.

Two policies are provided:

* :class:`RoundRobinPolicy` — rotate between runnable threads with a
  configurable quantum of steps;
* :class:`RandomPolicy` — seeded pseudo-random choice per step, which
  explores more interleavings across seeds (used by the test suite to
  check the detector's guarantees over many schedules).

Determinism matters doubly here: the dynamic detector's report set can
legitimately vary across interleavings (it is an *on-the-fly* detector),
so reproducible experiments need reproducible schedules.
"""

from __future__ import annotations

import enum
import random
from typing import Iterator, Optional

from ..lang.errors import MJRuntimeError


class ThreadStatus(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"  # Waiting for a monitor.
    JOINING = "joining"  # Waiting for another thread to finish.
    WAITING = "waiting"  # In a wait set (wait/barrier); only a notify wakes it.
    FINISHED = "finished"


class ThreadState:
    """Bookkeeping for one MJ thread.

    ``thread_id`` 0 is always the main thread; children are numbered in
    start order, matching the paper's ``T1``, ``T2``, ... notation.
    """

    def __init__(self, thread_id: int, name: str, body: Iterator):
        self.thread_id = thread_id
        self.name = name
        self.body = body
        self.status = ThreadStatus.RUNNABLE
        #: Monitor (a values.Monitor) this thread is blocked on, if any.
        self.blocked_on = None
        #: ThreadState this thread is joining on, if any.
        self.joining_on: Optional["ThreadState"] = None
        #: Human-readable label for what a WAITING thread waits on (set by
        #: the interpreter; used in lost-wakeup deadlock reports).
        self.waiting_on: Optional[str] = None
        self.steps = 0

    def __repr__(self) -> str:
        return f"<thread {self.name} ({self.status.value})>"


class DeadlockError(MJRuntimeError):
    """All live threads are blocked on monitors or joins."""


class StepLimitExceeded(MJRuntimeError):
    """The scheduler's global step budget was exhausted."""


class SchedulingPolicy:
    """Chooses the next thread to run from the runnable set."""

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        raise NotImplementedError

    def pick_waiter(self, waiters: list[int]) -> int:
        """Choose which waiting thread a ``notify`` wakes.

        ``waiters`` is the non-empty wait set in arrival (FIFO) order;
        the default takes the oldest waiter, which keeps round-robin and
        replayed schedules deterministic.
        """
        return waiters[0]


class RoundRobinPolicy(SchedulingPolicy):
    """Run each thread for up to ``quantum`` consecutive steps."""

    def __init__(self, quantum: int = 10):
        if quantum < 1:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._current_id: Optional[int] = None
        self._remaining = 0

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        if self._remaining > 0:
            for thread in runnable:
                if thread.thread_id == self._current_id:
                    self._remaining -= 1
                    return thread
        # Rotate: pick the next thread id after the current one.
        runnable_sorted = sorted(runnable, key=lambda t: t.thread_id)
        chosen = runnable_sorted[0]
        if self._current_id is not None:
            for thread in runnable_sorted:
                if thread.thread_id > self._current_id:
                    chosen = thread
                    break
        self._current_id = chosen.thread_id
        self._remaining = self.quantum - 1
        return chosen


class RandomPolicy(SchedulingPolicy):
    """Seeded uniform choice among runnable threads at every step."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, runnable: list[ThreadState]) -> ThreadState:
        return self._rng.choice(runnable)

    def pick_waiter(self, waiters: list[int]) -> int:
        return self._rng.choice(waiters)


class Scheduler:
    """Drives all MJ threads to completion under a policy.

    The scheduler owns thread registration and the unblocking rules:

    * a ``BLOCKED`` thread becomes runnable when its monitor is free or
      already owned by it;
    * a ``JOINING`` thread becomes runnable when its target finished.

    ``max_steps`` bounds total execution to catch accidental infinite
    loops in workloads.
    """

    def __init__(self, policy: SchedulingPolicy, max_steps: int = 10_000_000):
        self.policy = policy
        self.max_steps = max_steps
        self.threads: list[ThreadState] = []
        self.total_steps = 0

    def register(self, thread: ThreadState) -> None:
        self.threads.append(thread)

    def _refresh_statuses(self) -> None:
        for thread in self.threads:
            if thread.status is ThreadStatus.BLOCKED:
                monitor = thread.blocked_on
                if monitor is not None and monitor.can_acquire(thread.thread_id):
                    thread.status = ThreadStatus.RUNNABLE
                    thread.blocked_on = None
            elif thread.status is ThreadStatus.JOINING:
                target = thread.joining_on
                if target is not None and target.status is ThreadStatus.FINISHED:
                    thread.status = ThreadStatus.RUNNABLE
                    thread.joining_on = None

    def run(self) -> int:
        """Run until every thread finishes; returns total steps executed.

        This loop runs once per scheduler step, so it is written for
        constant-factor speed: status refresh and runnable collection
        are one fused pass, the round-robin in-quantum case bypasses
        ``policy.choose`` (threads register with ``thread_id`` equal to
        their list index, so the current thread is a direct lookup — the
        id is still verified before trusting it), and the generator
        resume is inlined.  Every choice is bit-identical to the naive
        refresh/filter/choose sequence this replaces.
        """
        threads = self.threads
        policy = self.policy
        round_robin = policy if type(policy) is RoundRobinPolicy else None
        RUNNABLE = ThreadStatus.RUNNABLE
        BLOCKED = ThreadStatus.BLOCKED
        JOINING = ThreadStatus.JOINING
        FINISHED = ThreadStatus.FINISHED
        max_steps = self.max_steps
        total = self.total_steps
        try:
            while True:
                runnable = []
                append = runnable.append
                for thread in threads:
                    status = thread.status
                    if status is RUNNABLE:
                        append(thread)
                    elif status is BLOCKED:
                        monitor = thread.blocked_on
                        if monitor is not None and monitor.can_acquire(
                            thread.thread_id
                        ):
                            thread.status = RUNNABLE
                            thread.blocked_on = None
                            append(thread)
                    elif status is JOINING:
                        target = thread.joining_on
                        if target is not None and target.status is FINISHED:
                            thread.status = RUNNABLE
                            thread.joining_on = None
                            append(thread)
                if not runnable:
                    live = [
                        t for t in threads if t.status is not FINISHED
                    ]
                    if not live:
                        return total
                    held = ", ".join(
                        f"{t.name} ({t.status.value})" for t in live
                    )
                    waiting = [
                        t for t in live if t.status is ThreadStatus.WAITING
                    ]
                    if waiting:
                        lost = "; ".join(
                            f"{t.name} waits on {t.waiting_on or '?'}"
                            for t in waiting
                        )
                        raise DeadlockError(
                            "deadlock: all live threads waiting: "
                            f"{held} — lost wakeup: {lost} and no live thread "
                            "can notify"
                        )
                    raise DeadlockError(
                        f"deadlock: all live threads waiting: {held}"
                    )
                thread = None
                if round_robin is not None and round_robin._remaining > 0:
                    current_id = round_robin._current_id
                    if current_id is not None and current_id < len(threads):
                        current = threads[current_id]
                        if (
                            current.thread_id == current_id
                            and current.status is RUNNABLE
                        ):
                            round_robin._remaining -= 1
                            thread = current
                if thread is None:
                    thread = policy.choose(runnable)
                try:
                    thread.body.send(None)
                    thread.steps += 1
                except StopIteration:
                    thread.status = FINISHED
                    thread.steps += 1
                total += 1
                if total > max_steps:
                    raise StepLimitExceeded(
                        f"execution exceeded {self.max_steps} scheduler steps"
                    )
        finally:
            self.total_steps = total

    def _step(self, thread: ThreadState) -> None:
        """Advance ``thread`` by one preemption interval."""
        try:
            thread.body.send(None)
            thread.steps += 1
        except StopIteration:
            thread.status = ThreadStatus.FINISHED
            thread.steps += 1
