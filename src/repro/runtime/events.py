"""The event stream flowing from the instrumented runtime to detectors.

The paper's instrumented executable generates *access events* plus the
synchronization notifications the runtime phases need (Figure 1).  The
MJ interpreter plays the role of the instrumented executable: it emits

* :class:`AccessEvent` for every executed, *instrumented* memory-access
  site (the instrumentation plan decides which sites are instrumented —
  Sections 5 and 6),
* monitor enter/exit notifications (the cache evicts on outermost
  monitorexit, Section 4.2),
* thread start / join / end notifications (used for the ownership model
  and the ``S_j`` join pseudo-locks, Sections 2.3 and 7).

Note the raw :class:`AccessEvent` carries *no lockset*: per the paper's
architecture the detector itself observes monitor operations, so the
lockset component ``e.L`` of the formal 5-tuple (Section 2.4) is
attached by :class:`repro.detector.locksets.LockTracker` inside the
detection pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple

from ..lang.ast import AccessKind


class MemoryLocation(NamedTuple):
    """A logical memory location ``e.m``: an object uid plus a field name.

    Array elements share the pseudo-field ``"[]"`` (footnote 1 of the
    paper); static fields use the owning class object's uid.  Detector
    variants may deliberately coarsen the key (the ``FieldsMerged``
    configuration of Table 3 keys by ``object_uid`` alone).
    """

    object_uid: int
    field: str

    def __str__(self) -> str:
        return f"#{self.object_uid}.{self.field}"


class ObjectKind(enum.Enum):
    """What kind of heap entity a location's object uid refers to."""

    INSTANCE = "instance"
    ARRAY = "array"
    CLASS = "class"


class LocationInterner:
    """Per-object field tables interning :class:`MemoryLocation` keys.

    The runtime emits millions of accesses but touches few distinct
    ``(object, field)`` pairs, so the hot path should reuse one
    canonical key object per pair instead of allocating a fresh
    NamedTuple per event.  Canonical keys make downstream dict lookups
    hit the identity fast path and keep per-location state (tries,
    ownership, caches) keyed by a single shared object.
    """

    __slots__ = ("_tables",)

    def __init__(self) -> None:
        #: object uid -> field name -> canonical MemoryLocation.
        self._tables: dict[int, dict[str, MemoryLocation]] = {}

    def intern(self, object_uid: int, field: str) -> MemoryLocation:
        """The canonical location for ``(object_uid, field)``."""
        table = self._tables.get(object_uid)
        if table is None:
            self._tables[object_uid] = table = {}
        location = table.get(field)
        if location is None:
            table[field] = location = MemoryLocation(object_uid, field)
        return location

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())


@dataclass(frozen=True)
class AccessEvent:
    """One executed memory access, as emitted by an instrumented site.

    ``site_id`` is the paper's source-location component ``e.s``: it is
    used only for reporting and optimization bookkeeping, never for the
    race decision itself.
    """

    location: MemoryLocation
    thread_id: int
    kind: AccessKind
    site_id: int
    object_kind: ObjectKind = ObjectKind.INSTANCE
    #: Textual description of the accessed object, for race reports
    #: (e.g. ``"Task#17"``).  Table 3 counts racy *objects*, so reports
    #: aggregate on this.
    object_label: str = ""

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


class EventSink:
    """Receiver interface for the runtime event stream.

    Detectors and statistics collectors subclass this; all methods
    default to no-ops so sinks override only what they observe.
    ``reentrant`` is True on monitor events that do not change lock
    ownership (inner enter/exit of a reentrant monitor).
    """

    def on_access(self, event: AccessEvent) -> None:
        """An instrumented memory access executed."""

    def on_access_parts(
        self,
        object_uid: int,
        field: str,
        thread_id: int,
        kind: AccessKind,
        site_id: int,
        object_kind: ObjectKind,
        object_label: str,
    ) -> None:
        """The same access, delivered as scalars (the hot-path form).

        The interpreter emits through this entry point so sinks that
        don't need an :class:`AccessEvent` object (recorders, the
        detection pipeline) can skip the per-event allocation entirely.
        The default bridges to :meth:`on_access`, so sinks overriding
        only the event-object API keep working unchanged.
        """
        self.on_access(
            AccessEvent(
                location=MemoryLocation(object_uid, field),
                thread_id=thread_id,
                kind=kind,
                site_id=site_id,
                object_kind=object_kind,
                object_label=object_label,
            )
        )

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        """``thread_id`` entered the monitor of object ``lock_uid``."""

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        """``thread_id`` exited the monitor of object ``lock_uid``."""

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        """``parent_id`` executed ``start`` on thread ``child_id``."""

    def on_thread_end(self, thread_id: int) -> None:
        """Thread ``thread_id`` finished executing."""

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        """``joiner_id`` completed a ``join`` on finished thread ``joined_id``."""

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        """``thread_id`` returned from a ``wait`` on object ``cond_uid``.

        Emitted at wakeup (after the monitor is re-acquired), so in the
        log a notify entry always precedes the wait entries it released —
        post-mortem happens-before replay sees edges in causal order.
        The monitor release/re-acquire around the suspension is reported
        through the ordinary :meth:`on_monitor_exit` /
        :meth:`on_monitor_enter` events, keeping locksets exact.
        """

    def on_notify(self, thread_id: int, cond_uid: int, notify_all: bool) -> None:
        """``thread_id`` executed ``notify``/``notifyall`` on ``cond_uid``.

        Barrier arrivals are reported as ``notify_all`` on the barrier
        object followed by one :meth:`on_wait` per released thread.
        The lockset detectors deliberately ignore these events (the
        paper's precision argument, Section 2.2); happens-before
        detectors turn them into clock edges.
        """

    def on_run_end(self) -> None:
        """The whole program execution completed (post-mortem flush point)."""


class MulticastSink(EventSink):
    """Fans the event stream out to several sinks, in order."""

    def __init__(self, sinks):
        self.sinks = list(sinks)

    def on_access(self, event: AccessEvent) -> None:
        for sink in self.sinks:
            sink.on_access(event)

    def on_access_parts(
        self, object_uid, field, thread_id, kind, site_id, object_kind, object_label
    ) -> None:
        for sink in self.sinks:
            sink.on_access_parts(
                object_uid, field, thread_id, kind, site_id, object_kind, object_label
            )

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        for sink in self.sinks:
            sink.on_monitor_enter(thread_id, lock_uid, reentrant)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        for sink in self.sinks:
            sink.on_monitor_exit(thread_id, lock_uid, reentrant)

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        for sink in self.sinks:
            sink.on_thread_start(parent_id, child_id)

    def on_thread_end(self, thread_id: int) -> None:
        for sink in self.sinks:
            sink.on_thread_end(thread_id)

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        for sink in self.sinks:
            sink.on_thread_join(joiner_id, joined_id)

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        for sink in self.sinks:
            sink.on_wait(thread_id, cond_uid)

    def on_notify(self, thread_id: int, cond_uid: int, notify_all: bool) -> None:
        for sink in self.sinks:
            sink.on_notify(thread_id, cond_uid, notify_all)

    def on_run_end(self) -> None:
        for sink in self.sinks:
            sink.on_run_end()


class CountingSink(EventSink):
    """Counts events; used by the benchmark harness for the
    platform-independent side of Table 2."""

    def __init__(self) -> None:
        self.accesses = 0
        self.reads = 0
        self.writes = 0
        self.monitor_enters = 0
        self.monitor_exits = 0
        self.thread_starts = 0
        self.thread_joins = 0
        self.waits = 0
        self.notifies = 0

    def on_access(self, event: AccessEvent) -> None:
        self.accesses += 1
        if event.is_write:
            self.writes += 1
        else:
            self.reads += 1

    def on_access_parts(
        self, object_uid, field, thread_id, kind, site_id, object_kind, object_label
    ) -> None:
        self.accesses += 1
        if kind is AccessKind.WRITE:
            self.writes += 1
        else:
            self.reads += 1

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.monitor_enters += 1

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.monitor_exits += 1

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        self.thread_starts += 1

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        self.thread_joins += 1

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        self.waits += 1

    def on_notify(self, thread_id: int, cond_uid: int, notify_all: bool) -> None:
        self.notifies += 1


class LogSchemaError(ValueError):
    """A recorded event log does not match the current tuple schema.

    Raised instead of letting a stale or corrupted log misdecode: a log
    recorded by an older build (different column layout) or truncated in
    transit would otherwise be silently misread as field values shifting
    into the wrong positions.

    Consumers that need to act on *why* a log was rejected catch the
    three subclasses below — the error taxonomy shared by the CLI
    (distinct exit codes) and the ``repro serve`` daemon (distinct HTTP
    statuses):

    ==============================  =========  ====
    subclass                        CLI exit   HTTP
    ==============================  =========  ====
    :class:`LogNotFoundError`       2          404
    :class:`LogCorruptError`        3          422
    :class:`LogSchemaMismatchError` 4          400
    ==============================  =========  ====
    """


class LogNotFoundError(LogSchemaError):
    """The referenced log file does not exist (or cannot be opened)."""


class LogCorruptError(LogSchemaError):
    """The log's bytes are damaged: truncated sections, unknown record
    tags, CRC mismatches, out-of-range string ids, undecodable JSON.

    Carries the byte ``offset`` of the first damage when it is known —
    the CLI prints it, and the daemon's 422 response body echoes it so
    clients can locate the corruption without re-parsing the message.
    """

    def __init__(self, message: str, offset=None) -> None:
        super().__init__(message)
        #: Byte offset of the first corrupt structure, or None.
        self.offset = offset


class LogSchemaMismatchError(LogSchemaError):
    """The log is structurally intact but was recorded under a schema
    this build does not read (version skew, wrong entry layout, or a
    JSON payload that is not a serialized event log at all)."""


class RecordingSink(EventSink):
    """Records the full event stream as a list of compact tuples.

    The backbone of post-mortem detection (Section 1 notes the approach
    "could be easily modified to perform post-mortem datarace detection
    by creating a log of access events") and of the deterministic-replay
    tests.

    Access events are stored *tuple-encoded* — ``(ACCESS, object_uid,
    field, thread_id, kind, site_id, object_kind, object_label)`` —
    rather than as :class:`AccessEvent` objects, so recording mode
    allocates no per-event dataclass.  The encoding is lossless:
    :meth:`events` reconstructs equal :class:`AccessEvent` objects
    (with interned locations) for consumers that need them, and
    :meth:`replay_into` re-delivers the stream through the scalar
    :meth:`EventSink.on_access_parts` fast path.  The plain tuples are
    also what makes sharded post-mortem detection cheap to fan out
    across processes (:mod:`repro.detector.sharded`).

    The encoding is versioned (:data:`SCHEMA_VERSION`): post-mortem
    consumers call :func:`validate_entries` before decoding, and the
    serialized form produced by :func:`dump_log` embeds the version so
    :func:`load_log` can reject logs recorded under a different layout
    with a clear error instead of misdecoding them.
    """

    #: Version of the tuple-encoded entry layout.  v1 was the unversioned
    #: PR-1 encoding (identical column layout, no validation); v2 added
    #: validation; v3 added the WAIT and NOTIFY condition-synchronization
    #: tags.  Bump this whenever an entry tag gains, loses, or reorders
    #: columns — or when new tags appear that older builds would not
    #: understand.
    SCHEMA_VERSION = 3

    ACCESS = "access"
    ENTER = "enter"
    EXIT = "exit"
    START = "start"
    END = "end"
    JOIN = "join"
    WAIT = "wait"
    NOTIFY = "notify"

    def __init__(self) -> None:
        self.log: list[tuple] = []

    def on_access(self, event: AccessEvent) -> None:
        location = event.location
        self.log.append(
            (
                self.ACCESS,
                location.object_uid,
                location.field,
                event.thread_id,
                event.kind,
                event.site_id,
                event.object_kind,
                event.object_label,
            )
        )

    def on_access_parts(
        self, object_uid, field, thread_id, kind, site_id, object_kind, object_label
    ) -> None:
        self.log.append(
            (
                self.ACCESS,
                object_uid,
                field,
                thread_id,
                kind,
                site_id,
                object_kind,
                object_label,
            )
        )

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.log.append((self.ENTER, thread_id, lock_uid, reentrant))

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.log.append((self.EXIT, thread_id, lock_uid, reentrant))

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        self.log.append((self.START, parent_id, child_id))

    def on_thread_end(self, thread_id: int) -> None:
        self.log.append((self.END, thread_id))

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        self.log.append((self.JOIN, joiner_id, joined_id))

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        self.log.append((self.WAIT, thread_id, cond_uid))

    def on_notify(self, thread_id: int, cond_uid: int, notify_all: bool) -> None:
        self.log.append((self.NOTIFY, thread_id, cond_uid, notify_all))

    @property
    def access_count(self) -> int:
        return sum(1 for entry in self.log if entry[0] == self.ACCESS)

    def events(self):
        """Lossless view of the recorded accesses as :class:`AccessEvent`
        objects (locations interned, one canonical key per pair)."""
        interner = LocationInterner()
        for entry in self.log:
            if entry[0] == self.ACCESS:
                yield AccessEvent(
                    location=interner.intern(entry[1], entry[2]),
                    thread_id=entry[3],
                    kind=entry[4],
                    site_id=entry[5],
                    object_kind=entry[6],
                    object_label=entry[7],
                )

    def replay_into(self, sink: EventSink) -> None:
        """Re-deliver the recorded stream to ``sink`` (post-mortem mode)."""
        replay_entries(self.log, sink)


#: Expected tuple arity per entry tag (tag column included).
_ENTRY_ARITY = {
    RecordingSink.ACCESS: 8,
    RecordingSink.ENTER: 4,
    RecordingSink.EXIT: 4,
    RecordingSink.START: 3,
    RecordingSink.END: 2,
    RecordingSink.JOIN: 3,
    RecordingSink.WAIT: 3,
    RecordingSink.NOTIFY: 4,
}


def validate_entries(entries, version: int = RecordingSink.SCHEMA_VERSION) -> None:
    """Check a tuple-encoded log against the current schema.

    Raises :class:`LogSchemaError` naming the first offending entry.
    Post-mortem loaders call this before replaying a log that may have
    been recorded by a different build, pickled, or persisted to disk.
    """
    if version != RecordingSink.SCHEMA_VERSION:
        raise LogSchemaMismatchError(
            f"event log uses schema version {version}, but this build "
            f"reads version {RecordingSink.SCHEMA_VERSION} — re-record "
            f"the execution with the current build"
        )
    for index, entry in enumerate(entries):
        if not isinstance(entry, tuple) or not entry:
            raise LogSchemaMismatchError(
                f"log entry {index} is not a tagged tuple: {entry!r}"
            )
        arity = _ENTRY_ARITY.get(entry[0])
        if arity is None:
            raise LogSchemaMismatchError(
                f"log entry {index} has unknown tag {entry[0]!r} "
                f"(known: {sorted(_ENTRY_ARITY)})"
            )
        if len(entry) != arity:
            raise LogSchemaMismatchError(
                f"log entry {index} ({entry[0]!r}) has {len(entry)} "
                f"columns, schema version {RecordingSink.SCHEMA_VERSION} "
                f"expects {arity}: {entry!r}"
            )
        if entry[0] == RecordingSink.ACCESS and not (
            isinstance(entry[1], int)
            and isinstance(entry[2], str)
            and isinstance(entry[3], int)
            and isinstance(entry[4], AccessKind)
            and isinstance(entry[5], int)
            and isinstance(entry[6], ObjectKind)
            and isinstance(entry[7], str)
        ):
            raise LogSchemaMismatchError(
                f"log entry {index} has mistyped access columns: {entry!r}"
            )


def dump_log(log) -> dict:
    """Serialize a recorded log to a JSON-safe payload with an embedded
    schema version (enums are encoded by value)."""
    entries = log.log if isinstance(log, RecordingSink) else log
    encoded = []
    for entry in entries:
        if entry[0] == RecordingSink.ACCESS:
            encoded.append(
                [entry[0], entry[1], entry[2], entry[3], entry[4].value,
                 entry[5], entry[6].value, entry[7]]
            )
        else:
            encoded.append(list(entry))
    return {"version": RecordingSink.SCHEMA_VERSION, "entries": encoded}


def load_log(payload: dict) -> list[tuple]:
    """Decode a :func:`dump_log` payload back into tuple entries,
    validating the schema version and layout first."""
    if not isinstance(payload, dict) or "entries" not in payload:
        raise LogSchemaMismatchError(
            "payload is not a serialized event log (missing 'entries')"
        )
    version = payload.get("version")
    if version != RecordingSink.SCHEMA_VERSION:
        raise LogSchemaMismatchError(
            f"event log was serialized with schema version {version}, "
            f"but this build reads version "
            f"{RecordingSink.SCHEMA_VERSION} — re-record the execution"
        )
    entries: list[tuple] = []
    for index, raw in enumerate(payload["entries"]):
        if not raw:
            raise LogSchemaMismatchError(f"serialized entry {index} is empty")
        if raw[0] == RecordingSink.ACCESS:
            if len(raw) != _ENTRY_ARITY[RecordingSink.ACCESS]:
                raise LogSchemaMismatchError(
                    f"serialized access entry {index} has {len(raw)} "
                    f"columns: {raw!r}"
                )
            try:
                kind = AccessKind(raw[4])
                object_kind = ObjectKind(raw[6])
            except ValueError as error:
                raise LogSchemaMismatchError(
                    f"serialized entry {index} has unknown enum value: "
                    f"{error}"
                ) from error
            entries.append(
                (raw[0], raw[1], raw[2], raw[3], kind, raw[5], object_kind,
                 raw[7])
            )
        else:
            entries.append(tuple(raw))
    validate_entries(entries)
    return entries


def replay_entries(entries, sink: EventSink) -> None:
    """Deliver a sequence of tuple-encoded log entries to ``sink``,
    closing with :meth:`EventSink.on_run_end`.

    Accepts the compact entries produced by :class:`RecordingSink`;
    sharded post-mortem detection uses this to drive each shard's
    detector over its partition of the log.
    """
    access = RecordingSink.ACCESS
    enter = RecordingSink.ENTER
    exit_ = RecordingSink.EXIT
    start = RecordingSink.START
    end = RecordingSink.END
    join = RecordingSink.JOIN
    wait = RecordingSink.WAIT
    notify = RecordingSink.NOTIFY
    on_access_parts = sink.on_access_parts
    for entry in entries:
        tag = entry[0]
        if tag == access:
            on_access_parts(
                entry[1], entry[2], entry[3], entry[4], entry[5], entry[6], entry[7]
            )
        elif tag == enter:
            sink.on_monitor_enter(entry[1], entry[2], entry[3])
        elif tag == exit_:
            sink.on_monitor_exit(entry[1], entry[2], entry[3])
        elif tag == start:
            sink.on_thread_start(entry[1], entry[2])
        elif tag == end:
            sink.on_thread_end(entry[1])
        elif tag == join:
            sink.on_thread_join(entry[1], entry[2])
        elif tag == wait:
            sink.on_wait(entry[1], entry[2])
        elif tag == notify:
            sink.on_notify(entry[1], entry[2], entry[3])
    sink.on_run_end()
