"""The event stream flowing from the instrumented runtime to detectors.

The paper's instrumented executable generates *access events* plus the
synchronization notifications the runtime phases need (Figure 1).  The
MJ interpreter plays the role of the instrumented executable: it emits

* :class:`AccessEvent` for every executed, *instrumented* memory-access
  site (the instrumentation plan decides which sites are instrumented —
  Sections 5 and 6),
* monitor enter/exit notifications (the cache evicts on outermost
  monitorexit, Section 4.2),
* thread start / join / end notifications (used for the ownership model
  and the ``S_j`` join pseudo-locks, Sections 2.3 and 7).

Note the raw :class:`AccessEvent` carries *no lockset*: per the paper's
architecture the detector itself observes monitor operations, so the
lockset component ``e.L`` of the formal 5-tuple (Section 2.4) is
attached by :class:`repro.detector.locksets.LockTracker` inside the
detection pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple

from ..lang.ast import AccessKind


class MemoryLocation(NamedTuple):
    """A logical memory location ``e.m``: an object uid plus a field name.

    Array elements share the pseudo-field ``"[]"`` (footnote 1 of the
    paper); static fields use the owning class object's uid.  Detector
    variants may deliberately coarsen the key (the ``FieldsMerged``
    configuration of Table 3 keys by ``object_uid`` alone).
    """

    object_uid: int
    field: str

    def __str__(self) -> str:
        return f"#{self.object_uid}.{self.field}"


class ObjectKind(enum.Enum):
    """What kind of heap entity a location's object uid refers to."""

    INSTANCE = "instance"
    ARRAY = "array"
    CLASS = "class"


@dataclass(frozen=True)
class AccessEvent:
    """One executed memory access, as emitted by an instrumented site.

    ``site_id`` is the paper's source-location component ``e.s``: it is
    used only for reporting and optimization bookkeeping, never for the
    race decision itself.
    """

    location: MemoryLocation
    thread_id: int
    kind: AccessKind
    site_id: int
    object_kind: ObjectKind = ObjectKind.INSTANCE
    #: Textual description of the accessed object, for race reports
    #: (e.g. ``"Task#17"``).  Table 3 counts racy *objects*, so reports
    #: aggregate on this.
    object_label: str = ""

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


class EventSink:
    """Receiver interface for the runtime event stream.

    Detectors and statistics collectors subclass this; all methods
    default to no-ops so sinks override only what they observe.
    ``reentrant`` is True on monitor events that do not change lock
    ownership (inner enter/exit of a reentrant monitor).
    """

    def on_access(self, event: AccessEvent) -> None:
        """An instrumented memory access executed."""

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        """``thread_id`` entered the monitor of object ``lock_uid``."""

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        """``thread_id`` exited the monitor of object ``lock_uid``."""

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        """``parent_id`` executed ``start`` on thread ``child_id``."""

    def on_thread_end(self, thread_id: int) -> None:
        """Thread ``thread_id`` finished executing."""

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        """``joiner_id`` completed a ``join`` on finished thread ``joined_id``."""

    def on_run_end(self) -> None:
        """The whole program execution completed (post-mortem flush point)."""


class MulticastSink(EventSink):
    """Fans the event stream out to several sinks, in order."""

    def __init__(self, sinks):
        self.sinks = list(sinks)

    def on_access(self, event: AccessEvent) -> None:
        for sink in self.sinks:
            sink.on_access(event)

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        for sink in self.sinks:
            sink.on_monitor_enter(thread_id, lock_uid, reentrant)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        for sink in self.sinks:
            sink.on_monitor_exit(thread_id, lock_uid, reentrant)

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        for sink in self.sinks:
            sink.on_thread_start(parent_id, child_id)

    def on_thread_end(self, thread_id: int) -> None:
        for sink in self.sinks:
            sink.on_thread_end(thread_id)

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        for sink in self.sinks:
            sink.on_thread_join(joiner_id, joined_id)

    def on_run_end(self) -> None:
        for sink in self.sinks:
            sink.on_run_end()


class CountingSink(EventSink):
    """Counts events; used by the benchmark harness for the
    platform-independent side of Table 2."""

    def __init__(self) -> None:
        self.accesses = 0
        self.reads = 0
        self.writes = 0
        self.monitor_enters = 0
        self.monitor_exits = 0
        self.thread_starts = 0
        self.thread_joins = 0

    def on_access(self, event: AccessEvent) -> None:
        self.accesses += 1
        if event.is_write:
            self.writes += 1
        else:
            self.reads += 1

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.monitor_enters += 1

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.monitor_exits += 1

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        self.thread_starts += 1

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        self.thread_joins += 1


class RecordingSink(EventSink):
    """Records the full event stream as a list of tuples.

    The backbone of post-mortem detection (Section 1 notes the approach
    "could be easily modified to perform post-mortem datarace detection
    by creating a log of access events") and of the deterministic-replay
    tests.
    """

    ACCESS = "access"
    ENTER = "enter"
    EXIT = "exit"
    START = "start"
    END = "end"
    JOIN = "join"

    def __init__(self) -> None:
        self.log: list[tuple] = []

    def on_access(self, event: AccessEvent) -> None:
        self.log.append((self.ACCESS, event))

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.log.append((self.ENTER, thread_id, lock_uid, reentrant))

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        self.log.append((self.EXIT, thread_id, lock_uid, reentrant))

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        self.log.append((self.START, parent_id, child_id))

    def on_thread_end(self, thread_id: int) -> None:
        self.log.append((self.END, thread_id))

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        self.log.append((self.JOIN, joiner_id, joined_id))

    def replay_into(self, sink: EventSink) -> None:
        """Re-deliver the recorded stream to ``sink`` (post-mortem mode)."""
        for entry in self.log:
            tag = entry[0]
            if tag == self.ACCESS:
                sink.on_access(entry[1])
            elif tag == self.ENTER:
                sink.on_monitor_enter(entry[1], entry[2], entry[3])
            elif tag == self.EXIT:
                sink.on_monitor_exit(entry[1], entry[2], entry[3])
            elif tag == self.START:
                sink.on_thread_start(entry[1], entry[2])
            elif tag == self.END:
                sink.on_thread_end(entry[1])
            elif tag == self.JOIN:
                sink.on_thread_join(entry[1], entry[2])
        sink.on_run_end()
