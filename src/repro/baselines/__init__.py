"""Baseline detectors the paper compares against (Sections 8.3 and 9)."""

from .eraser import EraserDetector, EraserReport, LocationState
from .happens_before import HappensBeforeDetector, HBRaceReport, VectorClock
from .object_race import ObjectRaceDetector, ObjectRaceReport

__all__ = [
    "EraserDetector",
    "EraserReport",
    "HBRaceReport",
    "HappensBeforeDetector",
    "LocationState",
    "ObjectRaceDetector",
    "ObjectRaceReport",
    "VectorClock",
]
