"""Object-granularity race detection (Praun & Gross, OOPSLA 2001) — baseline.

Object race detection trades precision for speed by monitoring whole
*objects* rather than individual fields: all fields of an object share
one candidate lockset and one ownership record.  The paper's Table 3
isolates the granularity effect with its own detector's "FieldsMerged"
variant; this module additionally provides the baseline as described in
related work — object granularity *plus* Eraser's single-common-lock
definition plus an ownership filter — which the paper reports flooding
hedc with over 100 mostly-spurious reports against its own 5.

The coarsening produces two spurious-report patterns the paper calls
out (Section 8.3):

* objects mixing immutable (safely unsynchronized) fields with mutable
  locked fields — the immutable fields' lock-free accesses empty the
  object's candidate set;
* objects mixing thread-local fields with shared, synchronized fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..detector.locksets import LockTracker
from ..detector.ownership import SHARED, OwnershipFilter
from ..lang.ast import AccessKind
from ..runtime.events import AccessEvent, EventSink
from .condsync import SyncClocks


@dataclass
class ObjectRaceReport:
    object_uid: int
    object_label: str
    thread_id: int
    site_id: int


class ObjectRaceDetector(EventSink):
    """Ownership + per-object candidate locksets (single-common-lock)."""

    def __init__(self):
        self.locks = LockTracker()
        self.ownership = OwnershipFilter()
        self._sync = SyncClocks()
        #: object uid -> condition-sync epoch of the owner's last access.
        self._owner_epoch: dict[int, tuple] = {}
        #: object uid -> candidate lockset (None = not yet shared).
        self._candidates: dict[int, Optional[frozenset]] = {}
        #: object uids with at least one shared *write*.
        self._written: set[int] = set()
        self._reported: set[int] = set()
        self.reports: list[ObjectRaceReport] = []
        self.racy_objects: set = set()

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if not reentrant:
            self.locks.enter(thread_id, lock_uid)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if not reentrant:
            self.locks.exit(thread_id, lock_uid)

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        self._sync.on_wait(thread_id, cond_uid)

    def on_notify(self, thread_id: int, cond_uid: int, notify_all: bool) -> None:
        self._sync.on_notify(thread_id, cond_uid)

    def on_access(self, event: AccessEvent) -> None:
        uid = event.location.object_uid
        owner = self.ownership.owner_of(uid)
        if (
            owner is not None
            and owner is not SHARED
            and owner != event.thread_id
            and self._sync.ordered(self._owner_epoch.get(uid), event.thread_id)
        ):
            # Condition-sync handoff: the object stays owned (by the new
            # thread) instead of transitioning to shared — the deferral
            # the paper's per-pair check does not share.
            self.ownership.reown(uid, event.thread_id)
            self._owner_epoch[uid] = self._sync.epoch(event.thread_id)
            return
        admit, _ = self.ownership.admit(uid, event.thread_id)
        if not admit:
            self._owner_epoch[uid] = self._sync.epoch(event.thread_id)
            return
        held = self.locks.lockset(event.thread_id)
        previous = self._candidates.get(uid)
        candidates = held if previous is None else (previous & held)
        self._candidates[uid] = candidates
        if event.kind is AccessKind.WRITE:
            self._written.add(uid)
        if not candidates and uid in self._written and uid not in self._reported:
            self._reported.add(uid)
            self.racy_objects.add(event.object_label)
            self.reports.append(
                ObjectRaceReport(
                    object_uid=uid,
                    object_label=event.object_label,
                    thread_id=event.thread_id,
                    site_id=event.site_id,
                )
            )

    @property
    def object_count(self) -> int:
        return len(self.racy_objects)
