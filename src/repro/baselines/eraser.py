"""The Eraser lockset algorithm (Savage et al., TOCS 1997) — baseline.

Eraser enforces the discipline that every shared location is protected
by a single lock held on *every* access: each location carries a
candidate lockset ``C(v)``, refined by intersection with the accessing
thread's held locks; an empty ``C(v)`` on a (write-involved) shared
access is reported.  The per-location state machine defers reporting
through the initialization and read-sharing phases:

    Virgin → Exclusive(t) → Shared (first read by another thread)
                           ↘ Shared-Modified (first write by another)

Differences from the paper's detector, which this module exists to
demonstrate (Sections 8.3 and 9):

* **single common lock** — Eraser requires one lock common to *all*
  accesses, whereas the paper only requires every conflicting *pair*
  to share some lock.  The mtrt idiom (two children sharing lock
  ``syncObject``, the parent accessing after ``join``) has pairwise-
  intersecting locksets ``{S1, sync}``, ``{S2, sync}``, ``{S1, S2}``
  but no common lock: Eraser reports a spurious race, the paper's
  detector reports none;
* **no join modeling** — Eraser has no counterpart of the ``S_j``
  pseudo-locks.  This implementation still runs *with* them by default
  so that the single-common-lock difference can be isolated; pass
  ``join_pseudolocks=False`` for the historically faithful variant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..detector.locksets import LockTracker, join_pseudo_lock
from ..lang.ast import AccessKind
from ..runtime.events import AccessEvent, EventSink
from .condsync import SyncClocks


class LocationState(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _LocationInfo:
    state: LocationState = LocationState.VIRGIN
    owner: Optional[int] = None
    #: Condition-sync epoch of the owner's most recent access; an
    #: Exclusive location hands ownership to a thread whose first access
    #: is wait/notify-ordered after this epoch instead of going Shared.
    owner_epoch: Optional[tuple] = None
    candidates: Optional[frozenset] = None
    reported: bool = False


@dataclass
class EraserReport:
    location: object
    object_label: str
    field: str
    thread_id: int
    site_id: int


class EraserDetector(EventSink):
    """The Eraser state machine over the MJ event stream."""

    def __init__(self, join_pseudolocks: bool = False):
        self._join_pseudolocks = join_pseudolocks
        self.locks = LockTracker()
        self._sync = SyncClocks()
        self._locations: dict = {}
        self.reports: list[EraserReport] = []
        self.racy_locations: set = set()
        self.racy_objects: set = set()
        if join_pseudolocks:
            self.locks.acquire_pseudo(0, join_pseudo_lock(0))

    # -- synchronization ---------------------------------------------------

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if not reentrant:
            self.locks.enter(thread_id, lock_uid)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if not reentrant:
            self.locks.exit(thread_id, lock_uid)

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        if self._join_pseudolocks:
            self.locks.acquire_pseudo(child_id, join_pseudo_lock(child_id))

    def on_thread_end(self, thread_id: int) -> None:
        if self._join_pseudolocks:
            self.locks.release_pseudo(thread_id, join_pseudo_lock(thread_id))

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        if self._join_pseudolocks:
            self.locks.acquire_pseudo(joiner_id, join_pseudo_lock(joined_id))

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        self._sync.on_wait(thread_id, cond_uid)

    def on_notify(self, thread_id: int, cond_uid: int, notify_all: bool) -> None:
        self._sync.on_notify(thread_id, cond_uid)

    # -- the state machine --------------------------------------------------

    def on_access(self, event: AccessEvent) -> None:
        info = self._locations.get(event.location)
        if info is None:
            info = _LocationInfo()
            self._locations[event.location] = info
        thread = event.thread_id
        held = self.locks.lockset(thread)

        if info.state is LocationState.VIRGIN:
            info.state = LocationState.EXCLUSIVE
            info.owner = thread
            info.owner_epoch = self._sync.epoch(thread)
            return
        if info.state is LocationState.EXCLUSIVE:
            if thread == info.owner:
                info.owner_epoch = self._sync.epoch(thread)
                return
            if self._sync.ordered(info.owner_epoch, thread):
                # Condition-sync handoff: the previous owner's last
                # access happened before this one, so the initialization
                # discipline continues under the new owner — the state
                # machine stays Exclusive (Eraser's deferral).
                info.owner = thread
                info.owner_epoch = self._sync.epoch(thread)
                return
            info.candidates = held
            if event.kind is AccessKind.WRITE:
                info.state = LocationState.SHARED_MODIFIED
                self._check(info, event)
            else:
                info.state = LocationState.SHARED
            return
        # Shared / Shared-Modified: refine the candidate set.
        info.candidates = (
            held if info.candidates is None else info.candidates & held
        )
        if info.state is LocationState.SHARED:
            if event.kind is AccessKind.WRITE:
                info.state = LocationState.SHARED_MODIFIED
                self._check(info, event)
            return
        self._check(info, event)

    def _check(self, info: _LocationInfo, event: AccessEvent) -> None:
        if info.reported or info.candidates:
            return
        info.reported = True
        self.racy_locations.add(event.location)
        self.racy_objects.add(event.object_label)
        self.reports.append(
            EraserReport(
                location=event.location,
                object_label=event.object_label,
                field=event.location.field,
                thread_id=event.thread_id,
                site_id=event.site_id,
            )
        )

    @property
    def object_count(self) -> int:
        return len(self.racy_objects)
