"""A happened-before (vector clock) race detector — baseline.

Detectors in the TRaDe/Djit lineage order events by the happened-before
relation induced by synchronization: lock releases/acquires, thread
start, and join create edges; two conflicting accesses race iff neither
happens before the other.

The paper's Section 2.2 argues this definition *under-reports*: when
two critical sections on the same lock happen to execute in some order,
the HB edge through the lock hides the race that would have surfaced
under the opposite acquisition order — a *feasible* datarace.  The
lockset-based detector reports it; this baseline does not.  The
``examples/feasible_vs_actual.py`` example and the integration tests
drive exactly that scenario.

Implementation: Djit-style vector clocks with a full last-read map and
last-write epoch per location (FastTrack's read-map fallback without
the epoch fast path — clarity over speed, as this is a baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang.ast import AccessKind
from ..runtime.events import AccessEvent, EventSink


class VectorClock(dict):
    """A sparse vector clock: thread id -> logical time (default 0)."""

    def copy(self) -> "VectorClock":
        return VectorClock(self)

    def join(self, other: dict) -> None:
        for thread, clock in other.items():
            if clock > self.get(thread, 0):
                self[thread] = clock

    def happened_before(self, thread: int, clock: int) -> bool:
        """True iff the epoch ``(thread, clock)`` ≤ this vector clock."""
        return clock <= self.get(thread, 0)


@dataclass
class _LocationHistory:
    #: Last write epoch: (thread, clock), or None.
    write: Optional[tuple] = None
    write_label: str = ""
    #: Last read epoch per thread.
    reads: dict = field(default_factory=dict)


@dataclass
class HBRaceReport:
    location: object
    object_label: str
    current_thread: int
    prior_thread: int
    site_id: int
    kind: str  # "write-write" | "write-read" | "read-write"


class HappensBeforeDetector(EventSink):
    """Vector-clock datarace detection over the MJ event stream."""

    def __init__(self):
        self._thread_clocks: dict[int, VectorClock] = {0: VectorClock({0: 1})}
        self._lock_clocks: dict[int, VectorClock] = {}
        #: Condition clocks: object uid -> join of every notifier's clock.
        #: ``wait``-returns join these, ordering waiters after notifiers
        #: (and barrier parties after all arrivals).
        self._cond_clocks: dict[int, VectorClock] = {}
        self._locations: dict = {}
        self.reports: list[HBRaceReport] = []
        self.racy_locations: set = set()
        self.racy_objects: set = set()

    # -- clock plumbing ----------------------------------------------------

    def _clock(self, thread_id: int) -> VectorClock:
        clock = self._thread_clocks.get(thread_id)
        if clock is None:
            clock = VectorClock({thread_id: 1})
            self._thread_clocks[thread_id] = clock
        return clock

    def _increment(self, thread_id: int) -> None:
        clock = self._clock(thread_id)
        clock[thread_id] = clock.get(thread_id, 0) + 1

    # -- synchronization events ---------------------------------------------

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if reentrant:
            return
        lock_clock = self._lock_clocks.get(lock_uid)
        if lock_clock is not None:
            self._clock(thread_id).join(lock_clock)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if reentrant:
            return
        self._lock_clocks[lock_uid] = self._clock(thread_id).copy()
        self._increment(thread_id)

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        child = self._clock(child_id)
        child.join(self._clock(parent_id))
        self._increment(parent_id)

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        # Only join a clock the joined thread actually established.
        # Fabricating ``{joined_id: 1}`` here would invent a phantom
        # epoch for a thread that never emitted an event, silently
        # ordering the joiner after work that never happened (visible in
        # sharded partitions, where a thread's accesses may all live in
        # other shards).
        joined = self._thread_clocks.get(joined_id)
        if joined is not None:
            self._clock(joiner_id).join(joined)
        self._increment(joiner_id)

    def on_notify(self, thread_id: int, cond_uid: int, notify_all: bool) -> None:
        cond = self._cond_clocks.get(cond_uid)
        if cond is None:
            self._cond_clocks[cond_uid] = cond = VectorClock()
        cond.join(self._clock(thread_id))
        self._increment(thread_id)

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        # Emitted at wakeup-return, after the notify that released the
        # waiter, so joining the accumulated condition clock is sound.
        cond = self._cond_clocks.get(cond_uid)
        if cond is not None:
            self._clock(thread_id).join(cond)

    # -- accesses -----------------------------------------------------------

    def on_access(self, event: AccessEvent) -> None:
        history = self._locations.get(event.location)
        if history is None:
            history = _LocationHistory()
            self._locations[event.location] = history
        thread = event.thread_id
        clock = self._clock(thread)

        if event.kind is AccessKind.WRITE:
            # Write must be ordered after the previous write and after
            # every previous read.
            if history.write is not None:
                w_thread, w_clock = history.write
                if w_thread != thread and not clock.happened_before(
                    w_thread, w_clock
                ):
                    self._report(event, w_thread, "write-write")
            for r_thread, r_clock in history.reads.items():
                if r_thread != thread and not clock.happened_before(
                    r_thread, r_clock
                ):
                    self._report(event, r_thread, "read-write")
            history.write = (thread, clock.get(thread, 0))
            history.write_label = event.object_label
            history.reads = {}
        else:
            if history.write is not None:
                w_thread, w_clock = history.write
                if w_thread != thread and not clock.happened_before(
                    w_thread, w_clock
                ):
                    self._report(event, w_thread, "write-read")
            history.reads[thread] = clock.get(thread, 0)

    def _report(self, event: AccessEvent, prior_thread: int, kind: str) -> None:
        self.racy_locations.add(event.location)
        self.racy_objects.add(event.object_label)
        self.reports.append(
            HBRaceReport(
                location=event.location,
                object_label=event.object_label,
                current_thread=event.thread_id,
                prior_thread=prior_thread,
                site_id=event.site_id,
                kind=kind,
            )
        )

    @property
    def object_count(self) -> int:
        return len(self.racy_objects)
