"""Condition-synchronization clocks for the lockset baselines.

Eraser's state machine and the object-race detector both *defer*
reporting while a location (or object) stays exclusively owned.  With
only ``start``/``join`` in the vocabulary, ownership can transfer
silently just once (parent initializes, child takes over), and the
running candidate-set intersection makes the deferral unobservable
against the paper's detector.  Wait/notify handoffs change that: when
the previous owner's last access is ordered before the next thread's
first access *through a condition edge*, the historical detectors keep
the location in the Exclusive state (the deferral), while the paper's
pairwise lockset check still fires on the admitted disjoint pair —
the ``eraser-deferral-miss`` / ``object-deferral-miss`` directions of
the Section 9 comparison.

:class:`SyncClocks` is the minimal machinery for that ordering test:
per-thread scalar-epoch vector clocks advanced **only** by wait/notify
events.  Monitor, start, and join events deliberately do not touch
these clocks, so on any log without condition synchronization every
``ordered`` query is False and the detectors behave exactly as before
(the committed corpus matrices stay byte-identical).
"""

from __future__ import annotations

from typing import Optional


class SyncClocks:
    """Per-thread clocks driven only by condition-sync events."""

    def __init__(self) -> None:
        #: thread id -> {thread id: logical time}; threads start at 1.
        self._clocks: dict[int, dict[int, int]] = {}
        #: condition uid -> join of every notifier's clock at notify time.
        self._conds: dict[int, dict[int, int]] = {}

    def _clock(self, thread_id: int) -> dict[int, int]:
        clock = self._clocks.get(thread_id)
        if clock is None:
            self._clocks[thread_id] = clock = {thread_id: 1}
        return clock

    def on_notify(self, thread_id: int, cond_uid: int) -> None:
        clock = self._clock(thread_id)
        cond = self._conds.get(cond_uid)
        if cond is None:
            self._conds[cond_uid] = cond = {}
        for thread, time in clock.items():
            if time > cond.get(thread, 0):
                cond[thread] = time
        # Advance past the published epoch so the notifier's *later*
        # accesses are not ordered before the waiters it released.
        clock[thread_id] += 1

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        cond = self._conds.get(cond_uid)
        if not cond:
            return
        clock = self._clock(thread_id)
        for thread, time in cond.items():
            if time > clock.get(thread, 0):
                clock[thread] = time

    def epoch(self, thread_id: int) -> tuple[int, int]:
        """The thread's current scalar epoch ``(thread, time)``."""
        return (thread_id, self._clock(thread_id)[thread_id])

    def ordered(self, epoch: Optional[tuple[int, int]], thread_id: int) -> bool:
        """True iff ``epoch`` happened before ``thread_id``'s present.

        Only condition edges establish this; with no wait/notify events
        in the stream it is always False for distinct threads.
        """
        if epoch is None:
            return False
        owner, time = epoch
        if owner == thread_id:
            return True
        clock = self._clocks.get(thread_id)
        if clock is None:
            return False
        return clock.get(owner, 0) >= time
