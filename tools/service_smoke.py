"""CI smoke test for ``repro serve``: boot, submit, assert CLI parity.

Starts a real daemon subprocess, submits one MJ program and one
recorded MJBL binary log, and asserts the service's JSON reports are
byte-identical to ``repro check --report-json`` on the same inputs —
the contract the service exists to keep.  Also exercises the error
taxonomy (truncated upload → 422 with a byte offset) and the SIGTERM
drain.  Exits non-zero on the first violated expectation.

Usage: ``PYTHONPATH=src python tools/service_smoke.py``
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

PROGRAM = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    print d.x;
  }
}
class Data { field x; }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.x = this.d.x + 1; }
}
"""


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _canonical(payload) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(),
        capture_output=True,
        text=True,
    )


def _request(port: int, method: str, path: str, body: bytes = b""):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def main() -> int:
    failures = 0

    def check(condition: bool, label: str) -> None:
        nonlocal failures
        print(f"[smoke] {'ok  ' if condition else 'FAIL'} {label}")
        if not condition:
            failures += 1

    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        program = Path(tmp) / "racy.mj"
        program.write_text(PROGRAM)
        log_path = Path(tmp) / "racy.mjbl"
        recorded = _cli(
            "run", str(program), "--record-binary", str(log_path)
        )
        check(recorded.returncode == 0, "record an MJBL log")

        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "2"],
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            banner = daemon.stdout.readline()
            port = int(re.search(r":(\d+) \(", banner).group(1))
            check(True, f"daemon up on port {port}")

            status, data = _request(port, "GET", "/healthz")
            check(status == 200, "GET /healthz answers 200")

            # Program submission: byte parity with the CLI.
            status, data = _request(
                port,
                "POST",
                f"/submit?wait=1&seed=1&filename={program}",
                PROGRAM.encode(),
            )
            record = json.loads(data)
            check(
                status == 200 and record["job"]["state"] == "done",
                "program job completes",
            )
            cli = _cli(
                "check", str(program), "--seed", "1", "--report-json"
            )
            check(
                _canonical(record["result"]["report"])
                == cli.stdout.strip(),
                "program report byte-identical to repro check",
            )

            # Binary-log submission: byte parity with --from-log.
            status, data = _request(
                port, "POST", "/submit?wait=1", log_path.read_bytes()
            )
            record = json.loads(data)
            check(
                status == 200
                and record["job"]["kind"] == "binary-log"
                and record["job"]["state"] == "done",
                "MJBL job completes",
            )
            cli = _cli(
                "check", "--from-log", str(log_path), "--report-json"
            )
            check(
                _canonical(record["result"]["report"])
                == cli.stdout.strip(),
                "MJBL report byte-identical to repro check --from-log",
            )

            # Error taxonomy at the upload boundary.
            status, data = _request(
                port, "POST", "/submit", log_path.read_bytes()[:40]
            )
            payload = json.loads(data)
            check(
                status == 422
                and payload["taxonomy"] == "corrupt"
                and payload["offset"] == 40,
                "truncated MJBL answers 422 with byte offset",
            )

            daemon.send_signal(signal.SIGTERM)
            exited = daemon.wait(timeout=60)
            check(exited == 0, "SIGTERM drain exits 0")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)

    print(f"[smoke] {'PASS' if failures == 0 else f'{failures} FAILURES'}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
