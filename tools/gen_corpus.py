#!/usr/bin/env python
"""Regenerate the committed reproducer corpus (``tests/corpus/``).

Each entry is minted by :func:`repro.difflab.corpus.save_entry`, which
re-runs the case, asserts it exhibits the annotated discrepancy
classes, and records the full per-detector verdict matrix the PR gate
checks byte-for-byte.  Hand-written cases target classes the fuzzer
does not reach (the mtrt Eraser idiom, the §7.2 ownership-timing miss,
sharded-merge edges); fuzz-found cases are shrunk first so the corpus
stays readable.

Run from the repo root::

    PYTHONPATH=src python tools/gen_corpus.py [--out tests/corpus]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.detector import find_witness  # noqa: E402
from repro.difflab import (  # noqa: E402
    ScheduleSpec,
    case_classes,
    run_case,
    save_entry,
    shrink_case,
)
from repro.workloads.fuzz import generate_program  # noqa: E402

MTRT_ERASER_FP = """\
class Main {
  static def main() {
    var shared = new Shared();
    var lock0 = new LockObj();
    var w0 = new Worker0(shared, lock0);
    var w1 = new Worker1(shared, lock0);
    start w0;
    start w1;
    join w0;
    join w1;
    shared.f0 = 3;
  }
}

class Shared {
  field f0;
}

class LockObj { }

class Worker0 {
  field s;
  field lock0;
  def init(shared, l0) {
    this.s = shared;
    this.lock0 = l0;
  }
  def run() {
    var s = this.s;
    sync (this.lock0) {
      s.f0 = 1;
    }
  }
}

class Worker1 {
  field s;
  field lock0;
  def init(shared, l0) {
    this.s = shared;
    this.lock0 = l0;
  }
  def run() {
    var s = this.s;
    sync (this.lock0) {
      s.f0 = 2;
    }
  }
}

class Pad { field v; }
"""

OWNERSHIP_TIMING_72 = """\
class Main {
  static def main() {
    var shared = new Shared();
    var w0 = new Worker0(shared);
    var w1 = new Worker1(shared);
    start w0;
    start w1;
    join w0;
    join w1;
  }
}

class Shared {
  field f0;
}

class LockObj { }

class Worker0 {
  field s;
  def init(shared) {
    this.s = shared;
  }
  def run() {
    var s = this.s;
    var i0 = 0;
    while (i0 < 4) {
      s.f0 = i0;
      i0 = i0 + 1;
    }
  }
}

class Worker1 {
  field s;
  def init(shared) {
    this.s = shared;
  }
  def run() {
    var s = this.s;
    var acc = 0;
    var i1 = 0;
    while (i1 < 2) {
      acc = acc + 1;
      i1 = i1 + 1;
    }
    s.f0 = 7;
  }
}

class Pad { field v; }
"""

TBOTTOM_MERGE = """\
class Main {
  static def main() {
    var shared = new Shared();
    shared.f0 = 0;
    var lock0 = new LockObj();
    var w0 = new Worker0(shared, lock0);
    var w1 = new Worker1(shared, lock0);
    start w0;
    start w1;
    join w0;
    join w1;
  }
}

class Shared {
  field f0;
}

class LockObj { }

class Worker0 {
  field s;
  field lock0;
  def init(shared, l0) {
    this.s = shared;
    this.lock0 = l0;
  }
  def run() {
    var s = this.s;
    var acc = 0;
    sync (this.lock0) {
      s.f0 = 1;
    }
    var i1 = 0;
    while (i1 < 8) {
      acc = acc + 1;
      i1 = i1 + 1;
    }
    s.f0 = 2;
  }
}

class Worker1 {
  field s;
  field lock0;
  def init(shared, l0) {
    this.s = shared;
    this.lock0 = l0;
  }
  def run() {
    var s = this.s;
    sync (this.lock0) {
      s.f0 = 3;
    }
  }
}

class Pad { field v; }
"""

SHARDED_TINY = """\
class Main {
  static def main() {
    var shared = new Shared();
    var w0 = new Worker0(shared);
    start w0;
    join w0;
    print shared.f0;
  }
}

class Shared {
  field f0;
}

class LockObj { }

class Worker0 {
  field s;
  def init(shared) {
    this.s = shared;
  }
  def run() {
    var s = this.s;
    s.f0 = 1;
  }
}

class Pad { field v; }
"""

SHARDED_SYNC_REPLICATION = """\
class Main {
  static def main() {
    var shared = new Shared();
    shared.f0 = 0;
    shared.f1 = 0;
    var lock0 = new LockObj();
    var w0 = new Worker0(shared, lock0);
    var w1 = new Worker1(shared, lock0);
    start w0;
    start w1;
    join w0;
    join w1;
    print shared.f0;
    print shared.f1;
  }
}

class Shared {
  field f0;
  field f1;
}

class LockObj { }

class Worker0 {
  field s;
  field lock0;
  def init(shared, l0) {
    this.s = shared;
    this.lock0 = l0;
  }
  def run() {
    var s = this.s;
    var i0 = 0;
    while (i0 < 6) {
      sync (this.lock0) {
        s.f0 = s.f0 + 1;
      }
      s.f1 = s.f1 + 1;
      i0 = i0 + 1;
    }
  }
}

class Worker1 {
  field s;
  field lock0;
  def init(shared, l0) {
    this.s = shared;
    this.lock0 = l0;
  }
  def run() {
    var s = this.s;
    var i1 = 0;
    while (i1 < 6) {
      sync (this.lock0) {
        s.f0 = s.f0 + 1;
      }
      s.f1 = s.f1 + 1;
      i1 = i1 + 1;
    }
  }
}

class Pad { field v; }
"""

OBJECT_GRANULARITY_FP = """\
class Main {
  static def main() {
    var shared = new Shared();
    shared.f0 = 0;
    shared.f1 = 0;
    var lock0 = new LockObj();
    var lock1 = new LockObj();
    var w0 = new Worker0(shared, lock0, lock1);
    var w1 = new Worker1(shared, lock0, lock1);
    start w0;
    start w1;
    join w0;
    join w1;
    print shared.f0;
    print shared.f1;
  }
}

class Shared {
  field f0;
  field f1;
}

class LockObj { }

class Worker0 {
  field s;
  field lock0;
  field lock1;
  def init(shared, l0, l1) {
    this.s = shared;
    this.lock0 = l0;
    this.lock1 = l1;
  }
  def run() {
    var s = this.s;
    sync (this.lock0) {
      s.f0 = s.f0 + 1;
    }
    sync (this.lock1) {
      s.f1 = s.f1 + 1;
    }
  }
}

class Worker1 {
  field s;
  field lock0;
  field lock1;
  def init(shared, l0, l1) {
    this.s = shared;
    this.lock0 = l0;
    this.lock1 = l1;
  }
  def run() {
    var s = this.s;
    sync (this.lock0) {
      s.f0 = s.f0 + 1;
    }
    sync (this.lock1) {
      s.f1 = s.f1 + 1;
    }
  }
}

class Pad { field v; }
"""

ERASER_DEFERRAL_MISS = """\
class S { field x; field flag; }
class P {
  field s;
  def init(a) { this.s = a; }
  def run() {
    this.s.x = 1;
    sync (this.s) { this.s.flag = 1; notifyall this.s; }
    var r = this.s.x;
  }
}
class C {
  field s;
  def init(a) { this.s = a; }
  def run() {
    sync (this.s) { while (this.s.flag != 1) { wait this.s; } }
    this.s.x = 2;
  }
}
class Main {
  static def main() {
    var s = new S();
    start new C(s);
    start new P(s);
  }
}
"""

OBJECT_DEFERRAL_MISS = """\
class S { field x; }
class W1 {
  field s;
  def init(a) { this.s = a; }
  def run() {
    this.s.x = 1;
    barrier this.s, 2;
    barrier this.s, 2;
    var r = this.s.x;
  }
}
class W2 {
  field s;
  def init(a) { this.s = a; }
  def run() {
    barrier this.s, 2;
    this.s.x = 2;
    barrier this.s, 2;
  }
}
class Main {
  static def main() {
    var s = new S();
    var w1 = new W1(s);
    var w2 = new W2(s);
    start w1;
    start w2;
  }
}
"""

RW_RACE_MIN = """\
class Main {
  static def main() {
    var shared = new Shared();
    shared.f0 = 6;
    var w0 = new Worker0(shared);
    var w1 = new Worker1(shared);
    start w0;
    start w1;
    join w0;
    join w1;
    print shared.f0;
  }
}

class Shared {
  field f0;
}

class LockObj { }

class Worker0 {
  field s;
  def init(shared) {
    this.s = shared;
  }
  def run() {
    var s = this.s;
    s.f0 = 1;
  }
}

class Worker1 {
  field s;
  def init(shared) {
    this.s = shared;
  }
  def run() {
    var s = this.s;
    var r0 = s.f0;
  }
}

class Pad { field v; }
"""

RR = ScheduleSpec(kind="roundrobin")


def shape_check(klass, need_shared_field=True, min_workers=1, marker=".f"):
    """Keep shrunk corpus entries illustrative: the target class must
    stay on a shared data field (not collapse into the constructor-init
    pattern) and the program must keep enough worker threads.
    ``marker`` selects the field family (``".f"`` for the shared data
    pool, ``".v"`` for the handoff-bias token fields)."""

    def check(result):
        if result.source.count("class Worker") < min_workers:
            return False
        if not need_shared_field:
            return True
        return any(
            marker in item
            for d in result.discrepancies
            if d.klass == klass
            for item in d.items
        )

    return check


def shrunk_fuzz_entry(
    out, name, klass, seed, schedule, notes, min_workers=1, marker=".f",
    **fuzz_kwargs
):
    """Find ``klass`` in a fuzz case and commit its shrunk form."""
    source = generate_program(seed, **fuzz_kwargs)
    check = shape_check(klass, min_workers=min_workers, marker=marker)
    result = run_case(source, schedule)
    assert result.error is None, result.error
    exhibited = case_classes(result, violations_only=False)
    assert klass in exhibited, (name, klass, sorted(exhibited))
    assert check(result), (name, klass, "shape check fails on the seed case")
    small, small_spec, stats = shrink_case(
        source, schedule, frozenset([klass]), violations_only=False,
        extra_check=check,
    )
    print(f"  {name}: {stats.describe()}")
    return save_entry(
        out, name, small, small_spec, classes=[klass], notes=notes
    )


def _witnessable(result):
    """A ``predicted-not-observed`` item is worth committing only if it
    also survives the hybrid lockset conjunct on a shared data field:
    that is the subset for which a reordering witness can exist at all
    (pure-SHB extras on lock-protected fields are schedule artifacts the
    hybrid exists to refute, not reproducers)."""
    predicted = {
        item
        for d in result.discrepancies
        if d.klass == "predicted-not-observed"
        for item in d.items
    }
    hybrid = result.verdicts.get("hybrid")
    hb = result.verdicts.get("hb")
    if hybrid is None or hb is None:
        return False
    return any(".f" in c for c in predicted & (hybrid.locations - hb.locations))


def predicted_entry(out, name, seed, schedule, notes, **fuzz_kwargs):
    """Find a ``predicted-not-observed`` fuzz case, shrink it, then mint
    it together with a replay-checked reordering witness."""
    source = generate_program(seed, **fuzz_kwargs)
    result = run_case(source, schedule)
    assert result.error is None, result.error
    assert _witnessable(result), (name, "seed case is not witnessable")
    small, small_spec, stats = shrink_case(
        source, schedule, frozenset(["predicted-not-observed"]),
        violations_only=False, extra_check=_witnessable,
    )
    print(f"  {name}: {stats.describe()}")
    shrunk = run_case(small, small_spec)
    predicted = {
        item
        for d in shrunk.discrepancies
        if d.klass == "predicted-not-observed"
        for item in d.items
    }
    candidates = sorted(
        predicted
        & (shrunk.verdicts["hybrid"].locations - shrunk.verdicts["hb"].locations)
    )
    witness = None
    for location in candidates:
        witness = find_witness(small, location)
        if witness is not None:
            break
    assert witness is not None, (name, "no witness found", candidates)
    return save_entry(
        out, name, small, small_spec,
        classes=["predicted-not-observed"], notes=notes, witness=witness,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=None, help="corpus directory (default tests/corpus)"
    )
    args = parser.parse_args()
    out = (
        Path(args.out)
        if args.out
        else Path(__file__).resolve().parents[1] / "tests" / "corpus"
    )
    entries = []

    print("hand-written entries:")
    entries.append(save_entry(
        out, "eraser-mtrt-fp", MTRT_ERASER_FP, RR,
        classes=["eraser-single-lock-fp"],
        notes="The mtrt idiom (paper §8.3): both children write f0 under "
        "lock0, the parent writes after joining both.  Every conflicting "
        "pair shares a lock (lock0, or the S_j join pseudo-lock) but no "
        "single lock is common to all three accesses, so Eraser's "
        "candidate set empties and it reports a false positive; the "
        "paper detector correctly reports nothing.",
    ))
    entries.append(save_entry(
        out, "ownership-timing-72", OWNERSHIP_TIMING_72,
        ScheduleSpec(kind="random", seed=1),
        classes=["static-elimination-miss"],
        notes="The §7.2 ownership/static-elimination interaction.  Loop "
        "peeling instruments only Worker0's first f0 write; that event "
        "is swallowed by the ownership filter (Worker0 owns f0), so in "
        "the optimized stream the location never accumulates Worker0 "
        "accesses after the Worker1 write shares it, and the race the "
        "full stream reports (Worker1's write vs a later loop "
        "iteration's write) disappears.  Expected, documented gap — "
        "not a bug.",
    ))
    entries.append(save_entry(
        out, "tbottom-merge", TBOTTOM_MERGE, RR,
        classes=[],
        notes="Two threads write f0 under the same lock, then Worker0 "
        "writes it unlocked.  Under the default S_j modeling each "
        "thread's lockset carries its own pseudo-lock, so the two sync "
        "writes land on distinct trie nodes and the t-bottom thread "
        "meet never fires; with join_pseudolocks=False this is the "
        "minimal scenario where the meet is load-bearing (the "
        "drop-tbottom-meet injection makes exactly this case miss).  "
        "Committed for the verdict matrix and as the injection "
        "acceptance scenario.",
    ))
    entries.append(save_entry(
        out, "sharded-tiny", SHARDED_TINY, RR,
        classes=[],
        notes="One worker, one field, no race: the recorded log has a "
        "handful of access events over ~2 objects, so the 8-shard "
        "battery runs with more shards than objects (most shards see "
        "only replicated sync events).  Exercises the sharded-merge "
        "edge cases against the serial counters.",
    ))
    entries.append(save_entry(
        out, "sharded-sync-replication", SHARDED_SYNC_REPLICATION, RR,
        classes=["feasible-race-gap"],
        notes="Sync-heavy workload: 24 monitor enter/exits are "
        "replicated to every shard while f1's unlocked increments race. "
        "Exercises the merge counter invariants under heavy sync "
        "replication (cache_hits + weaker_filtered is only invariant "
        "as a sum).",
    ))

    print("shrunk fuzz-found entries:")
    entries.append(shrunk_fuzz_entry(
        out, "feasible-race-gap-min", "feasible-race-gap", 4, RR,
        "Shrunk fuzz case: a lockset race on a shared field that the "
        "happens-before baseline misses because the observed schedule "
        "ordered the accesses (§2.2's feasible races).",
        min_workers=2, n_workers=3, n_fields=3, n_locks=2,
    ))
    entries.append(shrunk_fuzz_entry(
        out, "ownership-suppressed-min", "ownership-suppressed", 4, RR,
        "Shrunk fuzz case: reference-raw (no ownership filter) reports "
        "races on initialization-phase accesses to a shared data field "
        "that the §7 ownership filter deliberately hides from the "
        "paper detector.",
        n_workers=3, n_fields=3, n_locks=2,
    ))
    entries.append(save_entry(
        out, "object-granularity-fp", OBJECT_GRANULARITY_FP, RR,
        classes=["object-granularity-fp"],
        notes="Per-field locking: f0 is always protected by lock0, f1 "
        "by lock1, so no location races; the whole-object baseline "
        "(Praun & Gross granularity) intersects the two disciplines "
        "into an empty object candidate set and flags the object "
        "(Table 3's FieldsMerged effect).",
    ))
    entries.append(shrunk_fuzz_entry(
        out, "eraser-init-fp-min", "eraser-single-lock-fp", 6, RR,
        "Shrunk fuzz case: Eraser's initialization false positive.  "
        "Main initializes the field, a single worker writes it once; "
        "the paper detector's ownership model sees no second-thread "
        "pair while Eraser's Shared-Modified transition with an empty "
        "candidate set reports.  Complements eraser-mtrt-fp, which "
        "shows the single-common-lock shape on the same class.",
        min_workers=2, n_workers=3, n_fields=3, n_locks=2,
    ))
    entries.append(save_entry(
        out, "eraser-deferral-miss-min", ERASER_DEFERRAL_MISS,
        ScheduleSpec(kind="random", seed=1),
        classes=["eraser-deferral-miss"],
        notes="The condition-sync handoff deferral (paper §9).  Under "
        "this schedule C blocks in the guarded wait, so P's unlocked "
        "x-write is wait/notify-ordered before C's: Eraser's state "
        "machine hands ownership along the condition edge and stays "
        "Exclusive, and P's final unlocked read only moves it to "
        "Shared (no check on a read).  The paper's pairwise check "
        "still admits the disjoint-lockset pair (C's write, P's read) "
        "and reports x.  Needs the seeded schedule: under plain "
        "round-robin C never waits and the case degrades into the "
        "eraser-single-lock-fp shape instead.",
    ))
    entries.append(save_entry(
        out, "object-deferral-miss-min", OBJECT_DEFERRAL_MISS, RR,
        classes=["eraser-deferral-miss", "object-deferral-miss"],
        notes="The whole-object deferral across barrier generations.  "
        "Each barrier arrival emits a notify and each release a wait, "
        "so every x access is condition-ordered and both historical "
        "detectors hand ownership around the cycle W1 -> W2 -> W1 "
        "without ever leaving the owned/Exclusive state — the object "
        "baseline never reports S, Eraser never reports x.  The "
        "paper's ownership model still shares x at W2's write and "
        "reports the disjoint-lockset pair against W1's final read.  "
        "Robust under any schedule: barriers emit their edges in "
        "every interleaving, unlike flag handshakes.",
    ))
    entries.append(shrunk_fuzz_entry(
        out, "ownership-timing-shift-min", "ownership-timing-shift", 1,
        ScheduleSpec(kind="random", seed=5),
        "Shrunk fuzz case (handoff-bias vocabulary): the optimized "
        "instrumentation plan changes the transformed program's yield "
        "structure, so the same scheduling seed produces a different "
        "interleaving, the guarded wait resolves differently, and a "
        "token field whose ownership travels along the condition edge "
        "in the full run gets its owned-to-shared transition at a "
        "different point in the static-plan run — paper-static "
        "reports a location the live run's ownership filter absorbs "
        "(§7.2, the extra-report direction).",
        min_workers=2, marker=".v",
        n_workers=3, n_fields=3, n_locks=2, handoff_bias=True,
    ))
    entries.append(save_entry(
        out, "rw-race-min", RW_RACE_MIN, RR,
        classes=[],
        notes="The smallest committed program with a real race: one "
        "worker writes f0, another reads it, no locks.  Every detector "
        "in the battery agrees (see the verdict matrix) — this is the "
        "shape the read-write-blind injection misses and the shrinker "
        "reduces the acceptance case to.",
    ))

    print("predictive entries:")
    entries.append(predicted_entry(
        out, "predicted-not-observed-min", 8,
        ScheduleSpec(kind="random", seed=3),
        "Shrunk fuzz case: the §2.2 reordering shape on the predictive "
        "axis.  Worker2 writes f2 unlocked and then enters lock1; "
        "Worker1 reads f2 inside lock1.  The recorded schedule runs "
        "Worker2 first, so plain happens-before orders write and read "
        "through the lock1 release/acquire edge and observes nothing — "
        "but SHB couples threads only through lock-protected write-read "
        "communication, and this read never sees a same-lock write, so "
        "the pair stays SHB-unordered and both predictors report "
        "#1.f2.  The committed witness schedule reorders the run "
        "(Worker1's locked read first) and the HB detector then "
        "observes the race, proving the prediction feasible.",
        n_workers=3, n_fields=3, n_locks=2,
    ))
    entries.append(shrunk_fuzz_entry(
        out, "lockset-fp-refuted-min", "lockset-fp-refuted", 4, RR,
        "Shrunk fuzz case: the hybrid predictor refuting a pure-lockset "
        "report.  Main initializes f2 and a single worker reads it — "
        "reference-raw flags the disjoint-lockset pair (S_0 vs S_1, no "
        "common lock), but the start edge orders initialization before "
        "the read in SHB under *every* reordering of this trace, so "
        "the hybrid's SHB conjunct drops the report.  The "
        "false-positive direction the predictive axis is designed to "
        "kill (the ownership filter suppresses the same pair for the "
        "paper detector; the hybrid reaches the same verdict without "
        "ownership state).",
        min_workers=1, n_workers=3, n_fields=3, n_locks=2,
    ))

    print(f"wrote {len(entries)} entries to {out}")
    for entry in entries:
        print(f"  {entry.describe()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
